package bussim

import (
	"math"
	"testing"

	"busarb/internal/core"
	"busarb/internal/dist"
)

// quickCfg returns a reduced-size config for fast tests (2000-sample
// batches instead of the paper's 8000).
func quickCfg(n int, proto string, load, cv float64, seed uint64) Config {
	f, err := core.ByName(proto)
	if err != nil {
		panic(err)
	}
	return Config{
		N:        n,
		Protocol: f,
		Inter:    UniformLoad(n, load, cv, 1.0),
		Seed:     seed,
		Batches:  10, BatchSize: 2000,
	}
}

func TestUniformLoad(t *testing.T) {
	s := UniformLoad(10, 2.5, 1.0, 1.0)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	// Per-agent load 0.25 -> mean interrequest 3.0.
	if math.Abs(s[0].Mean()-3.0) > 1e-12 {
		t.Errorf("mean = %v, want 3.0", s[0].Mean())
	}
	if s[0].CV() != 1.0 {
		t.Errorf("cv = %v", s[0].CV())
	}
}

func TestUniformLoadPanics(t *testing.T) {
	for _, load := range []float64{0, 10.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("load %v did not panic", load)
				}
			}()
			UniformLoad(10, load, 1, 1)
		}()
	}
}

func TestMeanForLoad(t *testing.T) {
	if m := MeanForLoad(0.5, 1.0); m != 1.0 {
		t.Errorf("MeanForLoad(0.5) = %v, want 1", m)
	}
	if m := MeanForLoad(0.1, 2.0); math.Abs(m-18) > 1e-12 {
		t.Errorf("MeanForLoad(0.1, S=2) = %v, want 18", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("MeanForLoad(1.5) did not panic")
		}
	}()
	MeanForLoad(1.5, 1)
}

func TestConfigValidation(t *testing.T) {
	rr, _ := core.ByName("RR1")
	bad := []Config{
		{N: 0, Protocol: rr, Inter: []dist.Sampler{}},
		{N: 2, Protocol: nil, Inter: UniformLoad(2, 0.5, 1, 1)},
		{N: 2, Protocol: rr, Inter: UniformLoad(3, 0.5, 1, 1)},
		{N: 2, Protocol: rr, Inter: UniformLoad(2, 0.5, 1, 1), ArbOverhead: 2}, // > service
		{N: 2, Protocol: rr, Inter: UniformLoad(2, 0.5, 1, 1), UrgentProb: []float64{0.5}},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(quickCfg(10, "RR1", 1.5, 1.0, 7))
	b := Run(quickCfg(10, "RR1", 1.5, 1.0, 7))
	if a.WaitMean.Mean != b.WaitMean.Mean || a.Throughput.Mean != b.Throughput.Mean {
		t.Error("identical seeds produced different results")
	}
	c := Run(quickCfg(10, "RR1", 1.5, 1.0, 8))
	if a.WaitMean.Mean == c.WaitMean.Mean {
		t.Error("different seeds produced identical wait means (suspicious)")
	}
}

func TestThroughputMatchesPaperLambda(t *testing.T) {
	// Table 4.1(a)'s λ column for 10 agents: closed-loop sources carry
	// slightly less than the offered load once queueing sets in.
	cases := []struct{ load, wantLambda float64 }{
		{0.25, 0.25}, {0.50, 0.48}, {1.00, 0.85}, {1.50, 0.99}, {2.00, 1.00},
	}
	for _, c := range cases {
		r := Run(quickCfg(10, "RR1", c.load, 1.0, 1))
		if math.Abs(r.Throughput.Mean-c.wantLambda) > 0.02 {
			t.Errorf("load %v: throughput %v, paper λ %v", c.load, r.Throughput.Mean, c.wantLambda)
		}
	}
}

func TestUtilizationCapped(t *testing.T) {
	r := Run(quickCfg(10, "RR1", 5.0, 1.0, 1))
	if r.Utilization.Mean > 1.0+1e-9 {
		t.Errorf("utilization %v > 1", r.Utilization.Mean)
	}
	if r.Utilization.Mean < 0.99 {
		t.Errorf("saturated bus utilization %v, want ~1", r.Utilization.Mean)
	}
}

func TestAgentThroughputsSumToTotal(t *testing.T) {
	r := Run(quickCfg(10, "FCFS1", 2.0, 1.0, 3))
	sum := 0.0
	for _, e := range r.AgentThroughput {
		sum += e.Mean
	}
	if math.Abs(sum-r.Throughput.Mean) > 1e-9 {
		t.Errorf("agent sum %v != total %v", sum, r.Throughput.Mean)
	}
}

// Regression against the paper's Table 4.2(a) (10 agents): the model
// reproduces W and the waiting-time standard deviations closely.
func TestPaperTable42aValues(t *testing.T) {
	cases := []struct {
		load                 float64
		wantW                float64
		wantSDFCFS, wantSDRR float64
	}{
		{0.25, 1.64, 0.33, 0.33},
		{1.00, 2.77, 1.18, 1.30},
		{2.00, 6.00, 1.43, 2.09},
		{7.52, 9.67, 0.32, 0.33},
	}
	for _, c := range cases {
		rr := Run(quickCfg(10, "RR1", c.load, 1.0, 42))
		fc := Run(quickCfg(10, "FCFS2", c.load, 1.0, 42))
		if rel := math.Abs(rr.WaitMean.Mean-c.wantW) / c.wantW; rel > 0.05 {
			t.Errorf("load %v: W = %v, paper %v (rel err %.1f%%)", c.load, rr.WaitMean.Mean, c.wantW, 100*rel)
		}
		if rel := math.Abs(rr.WaitStdDev.Mean-c.wantSDRR) / c.wantSDRR; rel > 0.12 {
			t.Errorf("load %v: sd_RR = %v, paper %v", c.load, rr.WaitStdDev.Mean, c.wantSDRR)
		}
		if rel := math.Abs(fc.WaitStdDev.Mean-c.wantSDFCFS) / c.wantSDFCFS; rel > 0.12 {
			t.Errorf("load %v: sd_FCFS = %v, paper %v", c.load, fc.WaitStdDev.Mean, c.wantSDFCFS)
		}
	}
}

// The conservation law the paper invokes (§4, footnote 4): mean waiting
// time is identical across all work-conserving non-preemptive protocols
// whose order of service does not depend on service times.
func TestConservationLawAcrossProtocols(t *testing.T) {
	var waits []float64
	for _, name := range []string{"FP", "RR1", "RR2", "FCFS1", "FCFS2", "AAP1", "AAP2", "Hybrid"} {
		r := Run(quickCfg(10, name, 1.5, 1.0, 99))
		waits = append(waits, r.WaitMean.Mean)
	}
	for i := 1; i < len(waits); i++ {
		if rel := math.Abs(waits[i]-waits[0]) / waits[0]; rel > 0.04 {
			t.Errorf("protocol %d: W = %v vs %v (rel %.1f%%) — conservation law violated",
				i, waits[i], waits[0], 100*rel)
		}
	}
}

// RR is perfectly fair (Table 4.1): throughput ratio ~1 at every load.
func TestRRFairness(t *testing.T) {
	for _, load := range []float64{0.5, 2.0, 5.0} {
		r := Run(quickCfg(10, "RR1", load, 1.0, 5))
		ratio := r.ThroughputRatio(10, 1)
		if math.Abs(ratio.Mean-1.0) > 0.06 {
			t.Errorf("load %v: RR ratio = %s, want ~1.00", load, ratio)
		}
	}
}

// FCFS1's residual unfairness peaks near saturation at ~6-9% and decays
// at very high load (Table 4.1(a)).
func TestFCFS1UnfairnessShape(t *testing.T) {
	nearSat := Run(quickCfg(10, "FCFS1", 2.0, 1.0, 5)).ThroughputRatio(10, 1).Mean
	veryHigh := Run(quickCfg(10, "FCFS1", 7.5, 1.0, 5)).ThroughputRatio(10, 1).Mean
	if nearSat < 1.03 || nearSat > 1.15 {
		t.Errorf("near-saturation FCFS1 ratio = %v, paper ~1.09", nearSat)
	}
	if veryHigh > nearSat {
		t.Errorf("ratio should decay past saturation: %v -> %v", nearSat, veryHigh)
	}
}

// FP starves low identities under saturation: the ratio explodes.
func TestFPStarvation(t *testing.T) {
	r := Run(quickCfg(10, "FP", 3.0, 1.0, 5))
	if r.AgentThroughput[0].Mean > 0.2*r.AgentThroughput[9].Mean {
		t.Errorf("FP at saturation: agent1 %v vs agent10 %v — expected starvation",
			r.AgentThroughput[0].Mean, r.AgentThroughput[9].Mean)
	}
}

// RR's waiting-time σ exceeds FCFS's at high load; they converge at low
// load (Table 4.2).
func TestWaitVarianceOrdering(t *testing.T) {
	rrLow := Run(quickCfg(30, "RR1", 0.25, 1.0, 6))
	fcLow := Run(quickCfg(30, "FCFS2", 0.25, 1.0, 6))
	if math.Abs(rrLow.WaitStdDev.Mean/fcLow.WaitStdDev.Mean-1) > 0.1 {
		t.Errorf("low load: sd_RR %v vs sd_FCFS %v, want ~equal",
			rrLow.WaitStdDev.Mean, fcLow.WaitStdDev.Mean)
	}
	rrHi := Run(quickCfg(30, "RR1", 2.0, 1.0, 6))
	fcHi := Run(quickCfg(30, "FCFS2", 2.0, 1.0, 6))
	ratio := rrHi.WaitStdDev.Mean / fcHi.WaitStdDev.Mean
	if ratio < 1.8 {
		t.Errorf("high load 30 agents: sd ratio = %v, paper ~2.4", ratio)
	}
}

func TestRR3RepassesCountedAndHarmless(t *testing.T) {
	r3 := Run(quickCfg(10, "RR3", 1.5, 1.0, 11))
	if r3.Repasses == 0 {
		t.Error("RR3 should record empty passes")
	}
	r1 := Run(quickCfg(10, "RR1", 1.5, 1.0, 11))
	// Same grant policy, so W should be close; RR3's extra passes cost a
	// little when they spill past transaction ends.
	if rel := math.Abs(r3.WaitMean.Mean-r1.WaitMean.Mean) / r1.WaitMean.Mean; rel > 0.05 {
		t.Errorf("RR3 W = %v vs RR1 %v (rel %.1f%%)", r3.WaitMean.Mean, r1.WaitMean.Mean, 100*rel)
	}
	if r1.Repasses != 0 {
		t.Error("RR1 must not repass")
	}
}

func TestCollectWaitsAndHist(t *testing.T) {
	cfg := quickCfg(10, "RR1", 1.5, 1.0, 12)
	cfg.CollectWaits = true
	cfg.HistBinWidth = 0.5
	cfg.HistMax = 100
	r := Run(cfg)
	if r.Waits == nil || r.Waits.N() != int(r.Completions) {
		t.Fatalf("Waits ECDF missing or wrong size")
	}
	if r.Hist == nil || r.Hist.Count() != r.Completions {
		t.Fatalf("Hist missing or wrong size")
	}
	// ECDF mean must agree with the pooled accumulator.
	if math.Abs(r.Waits.Mean()-r.WaitPooled.Mean()) > 1e-9 {
		t.Errorf("ECDF mean %v != pooled %v", r.Waits.Mean(), r.WaitPooled.Mean())
	}
}

func TestCompletionsAndElapsed(t *testing.T) {
	cfg := quickCfg(5, "RR1", 1.0, 1.0, 13)
	cfg.Batches, cfg.BatchSize = 4, 500
	r := Run(cfg)
	if r.Completions != 2000 {
		t.Errorf("Completions = %d, want 2000", r.Completions)
	}
	if r.Elapsed <= 0 {
		t.Errorf("Elapsed = %v", r.Elapsed)
	}
	if len(r.AgentBatches[0]) != 4 {
		t.Errorf("batches recorded = %d, want 4", len(r.AgentBatches[0]))
	}
}

func TestNoWarmupOption(t *testing.T) {
	cfg := quickCfg(5, "RR1", 1.0, 1.0, 13)
	cfg.Warmup = -1
	cfg.Batches, cfg.BatchSize = 2, 500
	r := Run(cfg)
	if r.Completions != 1000 {
		t.Errorf("Completions = %d", r.Completions)
	}
}

func TestUnequalLoadsProportionalAtLowLoad(t *testing.T) {
	// Agent 1 at double rate: at low load, throughput ratio ≈ 2
	// (Table 4.4(a), first rows).
	n := 10
	inter := UniformLoad(n, 0.5, 1.0, 1.0)
	// Halve agent 1's mean interrequest time => double rate.
	inter[0] = dist.ByCV(inter[0].Mean()/2, 1.0)
	f, _ := core.ByName("RR1")
	r := Run(Config{N: n, Protocol: f, Inter: inter, Seed: 14, Batches: 10, BatchSize: 2000})
	ratio := r.ThroughputRatio(1, 2)
	if math.Abs(ratio.Mean-2.0) > 0.25 {
		t.Errorf("low-load double-rate ratio = %s, want ~2.0", ratio)
	}
}

func TestDeterministicWorkloadCV0(t *testing.T) {
	// CV=0 everywhere must still run and saturate cleanly.
	r := Run(quickCfg(10, "RR1", 2.0, 0.0, 15))
	if r.Utilization.Mean < 0.99 {
		t.Errorf("CV=0 saturated utilization = %v", r.Utilization.Mean)
	}
	if r.WaitStdDev.Mean > 0.5 {
		// Deterministic saturated RR: waits are nearly constant.
		t.Errorf("CV=0 sd = %v, want ~0", r.WaitStdDev.Mean)
	}
}

func TestUrgentRequestsPreempt(t *testing.T) {
	// With a priority-capable protocol, agent 1's urgent requests see
	// lower waits than at the same load without priority.
	n := 10
	mk := func(prob []float64) *Result {
		return Run(Config{
			N:          n,
			Protocol:   func(m int) core.Protocol { return core.NewPriorityRR(m, core.RRIgnoreWithinClass) },
			Inter:      UniformLoad(n, 2.0, 1.0, 1.0),
			UrgentProb: prob,
			Seed:       16, Batches: 10, BatchSize: 2000,
		})
	}
	probs := make([]float64, n)
	probs[0] = 1.0 // agent 1 always urgent
	withPrio := mk(probs)
	noPrio := mk(nil)
	if withPrio.AgentWait[0].Mean() >= noPrio.AgentWait[0].Mean() {
		t.Errorf("urgent agent wait %v should beat non-urgent %v",
			withPrio.AgentWait[0].Mean(), noPrio.AgentWait[0].Mean())
	}
}

func TestResultMeanInter(t *testing.T) {
	r := Run(quickCfg(10, "RR1", 2.5, 1.0, 17))
	if math.Abs(r.MeanInter-3.0) > 1e-12 {
		t.Errorf("MeanInter = %v, want 3.0 (load 0.25/agent)", r.MeanInter)
	}
}

func BenchmarkRunRR(b *testing.B) {
	cfg := quickCfg(30, "RR1", 1.5, 1.0, 1)
	cfg.Batches, cfg.BatchSize = 2, 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg)
	}
}

func BenchmarkRunFCFS2(b *testing.B) {
	cfg := quickCfg(30, "FCFS2", 1.5, 1.0, 1)
	cfg.Batches, cfg.BatchSize = 2, 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(cfg)
	}
}

func TestResultInstanceAndClassWaits(t *testing.T) {
	n := 8
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.3
	}
	res := Run(Config{
		N:          n,
		Protocol:   func(m int) core.Protocol { return core.NewPriorityFCFS1(m, core.CounterOverflow) },
		Inter:      UniformLoad(n, 2.0, 1.0, 1.0),
		UrgentProb: probs,
		Seed:       18, Batches: 5, BatchSize: 1500,
	})
	if res.Instance == nil || res.Instance.Name() != "FCFS1+prio/overflow" {
		t.Fatalf("Instance = %v", res.Instance)
	}
	if res.WaitUrgent.N() == 0 || res.WaitNormal.N() == 0 {
		t.Fatal("class wait accumulators empty")
	}
	if res.WaitUrgent.Mean() >= res.WaitNormal.Mean() {
		t.Errorf("urgent wait %v >= normal %v", res.WaitUrgent.Mean(), res.WaitNormal.Mean())
	}
	// The two classes partition all samples.
	if res.WaitUrgent.N()+res.WaitNormal.N() != res.WaitPooled.N() {
		t.Errorf("class sample counts %d+%d != pooled %d",
			res.WaitUrgent.N(), res.WaitNormal.N(), res.WaitPooled.N())
	}
}

func TestBoundaryArbOnlyCostsMoreWaiting(t *testing.T) {
	// Deferring mid-transaction arrivals to the next boundary adds an
	// exposed arbitration for some requests: W rises, modestly.
	base := quickCfg(10, "RR1", 1.0, 1.0, 22)
	resA := Run(base)
	boundary := quickCfg(10, "RR1", 1.0, 1.0, 22)
	boundary.BoundaryArbOnly = true
	resB := Run(boundary)
	if resB.WaitMean.Mean <= resA.WaitMean.Mean {
		t.Errorf("boundary-only W %v <= overlapped W %v", resB.WaitMean.Mean, resA.WaitMean.Mean)
	}
	if resB.WaitMean.Mean > resA.WaitMean.Mean+0.6 {
		t.Errorf("boundary-only penalty too large: %v vs %v", resB.WaitMean.Mean, resA.WaitMean.Mean)
	}
}
