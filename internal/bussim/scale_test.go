package bussim

import (
	"fmt"
	"testing"
)

// TestKernelScaleRuns exercises the simulator at the agent counts the
// bit-parallel kernel unlocked (ROADMAP item 1): 1024 and 4096 agents,
// far past the former ~64-agent practical ceiling. The runs must stay
// deterministic and produce sane closed-loop throughput for each
// kernel-hosted protocol.
func TestKernelScaleRuns(t *testing.T) {
	ns := []int{1024}
	if !testing.Short() {
		ns = append(ns, 4096)
	}
	for _, n := range ns {
		for _, proto := range []string{"FP", "RR1", "RR3", "FCFS1", "FCFS2"} {
			t.Run(fmt.Sprintf("%s/n=%d", proto, n), func(t *testing.T) {
				cfg := quickCfg(n, proto, 2.5, 1.0, 11)
				cfg.Batches, cfg.BatchSize = 3, 1500
				a := Run(cfg)
				if a.Throughput.Mean <= 0 {
					t.Fatalf("throughput %v, want > 0", a.Throughput.Mean)
				}
				// Offered load 2.5 saturates the bus; the closed loop
				// must run near capacity (1 completion per unit time).
				if a.Throughput.Mean < 0.9 || a.Throughput.Mean > 1.01 {
					t.Errorf("saturated throughput = %v, want ~1", a.Throughput.Mean)
				}
				b := Run(cfg)
				if a.WaitMean.Mean != b.WaitMean.Mean || a.Throughput.Mean != b.Throughput.Mean {
					t.Error("identical seeds produced different results at scale")
				}
			})
		}
	}
}
