package bussim

import (
	"testing"

	"busarb/internal/core"
	"busarb/internal/obs"
)

// runTraced runs a small traced simulation and returns the events.
func runTraced(t *testing.T, proto string, load float64, lateJoin bool) []obs.Event {
	t.Helper()
	f, err := core.ByName(proto)
	if err != nil {
		t.Fatal(err)
	}
	var buf obs.Buffer
	Run(Config{
		N:        8,
		Protocol: f,
		Inter:    UniformLoad(8, load, 1.0, 1.0),
		Seed:     21,
		Batches:  2, BatchSize: 1000,
		Warmup:   -1,
		LateJoin: lateJoin,
		Observer: &buf,
	})
	return buf.Events()
}

// TestTraceScheduleInvariants replays the event stream and checks the
// physical invariants of the bus:
//   - transactions never overlap;
//   - every grant is preceded by an arbitration resolution naming the
//     same agent;
//   - the granted agent had an outstanding request;
//   - requests are never concurrent per agent (one outstanding);
//   - every completion follows its grant by exactly the service time.
func TestTraceScheduleInvariants(t *testing.T) {
	for _, proto := range []string{"RR1", "RR3", "FCFS1", "AAP1", "AAP2"} {
		events := runTraced(t, proto, 2.0, false)
		if len(events) == 0 {
			t.Fatalf("%s: no events", proto)
		}
		busyUntil := -1.0
		waiting := map[int]bool{}
		lastResolved := 0
		grantTime := map[int]float64{}
		for i, e := range events {
			switch e.Kind {
			case obs.RequestIssued:
				if waiting[e.Agent] {
					t.Fatalf("%s: event %d: agent %d requested twice", proto, i, e.Agent)
				}
				waiting[e.Agent] = true
			case obs.ArbitrationStart:
				for _, id := range e.Agents {
					if !waiting[id] {
						t.Fatalf("%s: event %d: competitor %d not waiting", proto, i, id)
					}
				}
			case obs.ArbitrationResolve:
				lastResolved = e.Agent
			case obs.ServiceStart:
				if e.Agent != lastResolved {
					t.Fatalf("%s: event %d: grant %d but last resolution was %d",
						proto, i, e.Agent, lastResolved)
				}
				if !waiting[e.Agent] {
					t.Fatalf("%s: event %d: granted non-waiting agent %d", proto, i, e.Agent)
				}
				if e.Time < busyUntil-1e-9 {
					t.Fatalf("%s: event %d: grant at %v during transaction ending %v",
						proto, i, e.Time, busyUntil)
				}
				waiting[e.Agent] = false
				busyUntil = e.Time + 1.0
				grantTime[e.Agent] = e.Time
			case obs.ServiceEnd:
				if got := e.Time - grantTime[e.Agent]; got < 1.0-1e-9 || got > 1.0+1e-9 {
					t.Fatalf("%s: event %d: service time %v, want 1.0", proto, i, got)
				}
			}
		}
	}
}

// TestTraceArbitrationOverlap checks the §4.1 timing rule in the event
// stream: whenever a grant happens on a busy bus (back-to-back), the
// arbitration that selected it started at or after the previous grant
// (i.e. within the previous transaction, overlapped).
func TestTraceArbitrationOverlap(t *testing.T) {
	events := runTraced(t, "RR1", 3.0, false)
	var lastGrant, lastArbStart float64 = -1, -1
	backToBack := 0
	for _, e := range events {
		switch e.Kind {
		case obs.ArbitrationStart:
			lastArbStart = e.Time
		case obs.ServiceStart:
			if lastGrant >= 0 && e.Time == lastGrant+1.0 {
				backToBack++
				if lastArbStart < lastGrant-1e-9 {
					t.Fatalf("back-to-back grant at %v selected by arbitration at %v (before previous grant %v)",
						e.Time, lastArbStart, lastGrant)
				}
			}
			lastGrant = e.Time
		}
	}
	if backToBack < 100 {
		t.Errorf("saturated run produced only %d back-to-back grants", backToBack)
	}
}

// TestTraceRepassOnlyRR3 ensures repass events appear exactly for RR3.
func TestTraceRepassOnlyRR3(t *testing.T) {
	count := func(events []obs.Event, k obs.Kind) int {
		n := 0
		for _, e := range events {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	if n := count(runTraced(t, "RR3", 0.5, false), obs.Repass); n == 0 {
		t.Error("RR3 trace has no repasses")
	}
	if n := count(runTraced(t, "RR1", 0.5, false), obs.Repass); n != 0 {
		t.Errorf("RR1 trace has %d repasses", n)
	}
}

// TestTraceFCFSOrder verifies end-to-end FCFS order from the event
// stream: under FCFS2, grants happen in exactly request order.
func TestTraceFCFSOrder(t *testing.T) {
	events := runTraced(t, "FCFS2", 2.0, false)
	var queue []int
	for i, e := range events {
		switch e.Kind {
		case obs.RequestIssued:
			queue = append(queue, e.Agent)
		case obs.ServiceStart:
			if len(queue) == 0 {
				t.Fatalf("event %d: grant with empty queue", i)
			}
			// The grant must be the oldest outstanding request, except
			// for same-instant ties, which the simulator cannot produce
			// with continuous interrequest times.
			if queue[0] != e.Agent {
				t.Fatalf("event %d: granted %d, oldest request is %d", i, e.Agent, queue[0])
			}
			queue = queue[1:]
		}
	}
}
