package core

import (
	"fmt"
	"math/bits"

	"busarb/internal/ident"
)

// ceilLog2 returns ceil(log2 v) for v >= 1.
func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	return bits.Len(uint(v - 1))
}

// MultiFCFS is the §3.2 extension allowing each agent up to r
// outstanding requests while still serving all requests in global FCFS
// order: the waiting-time counter gains ceil(log2 r) bits ("if one
// allows each agent to have up to 8 requests outstanding, first come
// first serve can still be implemented with only 3 more lines").
//
// Each queued request carries its own counter, incremented on every
// a-incr pulse (FCFS2 counting); the agent arbitrates with the counter
// of its oldest request and serves requests in its own FIFO order, which
// together realize global arrival order.
type MultiFCFS struct {
	n      int
	r      int
	layout ident.Layout
	queues [][]int // per-agent FIFO of request counters
	scratch
}

// NewMultiFCFS returns the multi-outstanding FCFS protocol for n agents
// with up to r outstanding requests each.
func NewMultiFCFS(n, r int) *MultiFCFS {
	if r < 1 {
		panic(fmt.Sprintf("core: MultiFCFS needs r >= 1, got %d", r))
	}
	return &MultiFCFS{
		n:      n,
		r:      r,
		layout: ident.Layout{StaticBits: ident.Width(n), CounterBits: ident.Width(n) + ceilLog2(r)},
		queues: make([][]int, n+1),
	}
}

// Name implements Protocol.
func (p *MultiFCFS) Name() string { return fmt.Sprintf("FCFSx%d", p.r) }

// N implements Protocol.
func (p *MultiFCFS) N() int { return p.n }

// MaxOutstanding returns r.
func (p *MultiFCFS) MaxOutstanding() int { return p.r }

// QueueLen returns how many requests agent id has outstanding.
func (p *MultiFCFS) QueueLen(id int) int { return len(p.queues[id]) }

// ExtraCounterBits returns the counter width beyond the single-request
// protocol's ceil(log2 N) — the paper's "only ceil(log2 r) more bits":
// 3 for r = 8, 0 for r = 1.
func (p *MultiFCFS) ExtraCounterBits() int { return ceilLog2(p.r) }

// OnRequest implements Protocol: the new request pulses a-incr; every
// waiting request (on every agent) increments; the new request enqueues
// with counter 0. It panics if the agent already has r requests
// outstanding — the workload must respect the window.
func (p *MultiFCFS) OnRequest(id int, _ float64) {
	if len(p.queues[id]) >= p.r {
		panic(fmt.Sprintf("core: agent %d exceeded %d outstanding requests", id, p.r))
	}
	maxCtr := 1<<p.layout.CounterBits - 1
	for a := 1; a <= p.n; a++ {
		q := p.queues[a]
		for i := range q {
			if q[i] < maxCtr {
				q[i]++
			}
		}
	}
	p.queues[id] = append(p.queues[id], 0)
}

// OnServiceStart implements Protocol: the oldest request is served.
func (p *MultiFCFS) OnServiceStart(id int, _ float64) {
	q := p.queues[id]
	if len(q) == 0 {
		panic(fmt.Sprintf("core: service start for agent %d with empty queue", id))
	}
	p.queues[id] = q[1:]
}

// Arbitrate implements Protocol: each waiting agent competes with the
// counter of its oldest (highest-counter) request.
func (p *MultiFCFS) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	nums := p.numsBuf(len(waiting))
	for i, id := range waiting {
		q := p.queues[id]
		if len(q) == 0 {
			panic(fmt.Sprintf("core: agent %d waiting with empty queue", id))
		}
		nums[i] = p.layout.Encode(ident.Number{Static: id, Counter: q[0]})
	}
	return Outcome{Winner: waiting[pickMax(nums)]}
}

// Reset implements Protocol.
func (p *MultiFCFS) Reset() {
	for i := range p.queues {
		p.queues[i] = nil
	}
}
