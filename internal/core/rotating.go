package core

import "fmt"

// RotatingRR is the prior-art round-robin scheme the paper's §3.1
// improves on: round-robin "implemented using a dynamic assignment of
// arbitration numbers". Each agent derives its arbitration number for
// the next arbitration by rotating its static identity around its own
// record of the previous winner. The paper calls this "less robust and
// more complex to implement than schemes that are based on static
// identities" — and this implementation makes the fragility concrete:
//
//   - The winning number on the bus is a *dynamic* number; each agent
//     decodes it back to a winner using its own rotation base. An agent
//     whose base is wrong decodes the wrong winner, so a single
//     corrupted register desynchronizes that agent forever (there is no
//     authoritative static identity on the lines to resynchronize from).
//   - Two desynchronized agents can apply the *same* dynamic number; at
//     the electrical level both would match the settled lines and both
//     would claim mastership. Collisions counts those events (the model
//     resolves them toward the lower static identity to keep running).
//
// Contrast RR1: the lines carry the winner's static identity, so every
// agent's register is rewritten with ground truth at each arbitration
// and any corruption heals in one cycle (see the robustness tests).
type RotatingRR struct {
	n int
	// base[a] is agent a's private belief about the previous winner's
	// static identity; all equal in a healthy system.
	base []int
	// Collisions counts arbitrations in which two or more agents
	// applied the same winning dynamic number.
	Collisions int64
}

// NewRotatingRR builds the dynamic-identity round-robin for n agents.
func NewRotatingRR(n int) *RotatingRR {
	b := make([]int, n+1)
	for i := range b {
		b[i] = n // initial agreed base: scan starts at N-1 ... wraps
	}
	return &RotatingRR{n: n, base: b}
}

// Name implements Protocol.
func (p *RotatingRR) Name() string { return "RotRR" }

// N implements Protocol.
func (p *RotatingRR) N() int { return p.n }

// Base returns agent id's rotation base (for tests).
func (p *RotatingRR) Base(id int) int { return p.base[id] }

// Corrupt overwrites agent id's rotation base, modeling a transient
// error or an agent that missed an arbitration (fault injection).
func (p *RotatingRR) Corrupt(id, base int) { p.base[id] = base }

// dyn computes the dynamic arbitration number agent id applies given
// rotation base j: the RR scan j-1 > j-2 > ... > 1 > N > ... > j mapped
// onto N > N-1 > ... > 1.
func (p *RotatingRR) dyn(id, j int) int {
	pos := (j - 1 - id + p.n) % p.n // 0 for the scan's head (j-1)
	if pos < 0 {
		pos += p.n
	}
	return p.n - pos
}

// undyn inverts dyn for a given base: which static identity does a
// winning dynamic number correspond to, in this agent's view?
func (p *RotatingRR) undyn(d, j int) int {
	pos := p.n - d
	id := (j - 1 - pos) % p.n
	if id <= 0 {
		id += p.n
	}
	return id
}

// OnRequest implements Protocol.
func (p *RotatingRR) OnRequest(int, float64) {}

// OnServiceStart implements Protocol.
func (p *RotatingRR) OnServiceStart(int, float64) {}

// Arbitrate implements Protocol.
func (p *RotatingRR) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	// Each competitor applies its dynamic number computed from its own
	// base; the lines settle to the maximum.
	best, bestID, dup := -1, 0, false
	for _, id := range waiting {
		d := p.dyn(id, p.base[id])
		switch {
		case d > best:
			best, bestID, dup = d, id, false
		case d == best:
			// Two agents applied the same winning number: electrical
			// collision. Resolve toward the lower static identity (a
			// deterministic stand-in for undefined hardware behavior).
			dup = true
			if id < bestID {
				bestID = id
			}
		}
	}
	if dup {
		p.Collisions++
	}
	// Every agent decodes the winning dynamic number through its own
	// base and records the result as the new base. Desynchronized
	// agents decode the wrong winner and stay desynchronized.
	for a := 1; a <= p.n; a++ {
		p.base[a] = p.undyn(best, p.base[a])
	}
	return Outcome{Winner: bestID}
}

// Reset implements Protocol.
func (p *RotatingRR) Reset() {
	for i := range p.base {
		p.base[i] = p.n
	}
	p.Collisions = 0
}

var _ Protocol = (*RotatingRR)(nil)

func init() {
	Registry["RotRR"] = func(n int) Protocol { return NewRotatingRR(n) }
}

// String formats the agent's view for debugging.
func (p *RotatingRR) String() string {
	return fmt.Sprintf("RotRR(n=%d, collisions=%d)", p.n, p.Collisions)
}
