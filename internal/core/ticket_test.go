package core

import (
	"testing"

	"busarb/internal/rng"
)

func TestTicketFCFSOrder(t *testing.T) {
	p := NewTicketFCFS(8)
	d := newDriver(t, p)
	d.requestAt(6, 1.0)
	d.requestAt(2, 2.0)
	d.requestAt(7, 3.0)
	for _, want := range []int{6, 2, 7} {
		if w := d.arbitrate(); w != want {
			t.Fatalf("grant = %d, want %d (ticket order)", w, want)
		}
	}
	if p.TicketCycles != 3 {
		t.Errorf("TicketCycles = %d, want 3 (one dispense per request)", p.TicketCycles)
	}
}

// The ticket scheme and FCFS2 implement the same policy; on histories
// without simultaneous arrivals they must grant identically.
func TestTicketMatchesFCFS2(t *testing.T) {
	src := rng.New(55)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(16)
		ops := randomHistory(src, n, 120)
		// Strip simultaneous arrivals: FCFS2 ties by identity, the
		// ticket dispenser by dispense order.
		var filtered []op
		lastT := -1.0
		for _, o := range ops {
			if o.arrive && o.time == lastT {
				continue
			}
			filtered = append(filtered, o)
			lastT = o.time
		}
		g1 := replay(t, NewTicketFCFS(n), filtered)
		g2 := replay(t, NewFCFS2(n), filtered)
		if !equalInts(g1, g2) {
			t.Fatalf("trial %d (n=%d): Ticket %v != FCFS2 %v", trial, n, g1, g2)
		}
	}
}

func TestTicketWrapsSafely(t *testing.T) {
	// Drive far past the modulus to exercise counter wrap: order must
	// stay FCFS throughout.
	n := 4
	p := NewTicketFCFS(n) // modulus = 2^6 = 64
	d := newDriver(t, p)
	src := rng.New(56)
	now := 0.0
	var queue []int
	for i := 0; i < 500; i++ {
		now++
		if src.Intn(2) == 0 {
			id := 1 + src.Intn(n)
			if !d.waiting[id] {
				d.requestAt(id, now)
				queue = append(queue, id)
			}
		} else if len(queue) > 0 {
			w := d.arbitrate()
			if w != queue[0] {
				t.Fatalf("step %d: grant %d, oldest ticket holder %d", i, w, queue[0])
			}
			queue = queue[1:]
		}
	}
	if p.TicketCycles < 100 {
		t.Fatalf("only %d tickets dispensed; wrap not exercised", p.TicketCycles)
	}
}

func TestTicketRegistryAndReset(t *testing.T) {
	f, err := ByName("Ticket")
	if err != nil {
		t.Fatal(err)
	}
	p := f(6).(*TicketFCFS)
	p.OnRequest(1, 0)
	p.Reset()
	if p.TicketCycles != 0 || p.next != 0 {
		t.Error("Reset incomplete")
	}
	if p.Name() != "Ticket" || p.N() != 6 {
		t.Error("metadata wrong")
	}
}
