package core

import (
	"sort"

	"busarb/internal/ident"
)

// boundary returns the number of waiting identities strictly below
// limit. waiting is sorted ascending, so this is a binary search and
// waiting[:boundary] is the inhibited-competition segment.
func boundary(waiting []int, limit int) int {
	return sort.SearchInts(waiting, limit)
}

// maxBelowOrMax returns the largest waiting identity strictly below
// limit, or the overall largest if none is. This is the round-robin
// scan j-1..1, N..j realized as a boundary lookup on the sorted
// waiting list.
func maxBelowOrMax(waiting []int, limit int) int {
	if i := boundary(waiting, limit); i > 0 {
		return waiting[i-1]
	}
	return waiting[len(waiting)-1]
}

// The distributed round-robin protocol (§3.1). The scheduling rule,
// common to all three implementations: if agent j won the previous
// arbitration, the next arbitration scans identities j-1 down to 1, then
// N down to j. The maximum-finding arbitration realizes this scan when
// agents with identities below the previous winner are given priority
// over the rest.
//
// All three implementations are provided because the paper discusses
// their different line costs and timing; they produce identical grant
// sequences (asserted by tests against each other and against the
// central round-robin oracle).

// RR1 is the first implementation: one extra bus line, the round-robin
// priority bit, treated as the most significant bit of the arbitration
// number. An agent sets the bit when its static identity is smaller than
// the recorded identity of the previous winner. The per-agent logic is a
// register (last winner) and a comparator.
type RR1 struct {
	n          int
	layout     ident.Layout
	lastWinner int
	scratch
}

// NewRR1 returns the round-robin-priority-bit implementation for n
// agents. The recorded winner starts at 0, so the first arbitration
// degenerates to fixed priority — exactly what hardware with a cleared
// winner register would do.
func NewRR1(n int) *RR1 {
	return &RR1{n: n, layout: ident.Layout{StaticBits: ident.Width(n), RRBit: true}}
}

// Name implements Protocol.
func (p *RR1) Name() string { return "RR1" }

// N implements Protocol.
func (p *RR1) N() int { return p.n }

// LastWinner returns the recorded identity of the most recent winner
// (every agent on the bus can observe this, §2.1).
func (p *RR1) LastWinner() int { return p.lastWinner }

// OnRequest implements Protocol.
func (p *RR1) OnRequest(int, float64) {}

// OnServiceStart implements Protocol.
func (p *RR1) OnServiceStart(int, float64) {}

// Arbitrate implements Protocol. The RR bit is the number's MSB, so
// agents below the previous winner outrank everyone else: the settled
// maximum is the largest waiting identity strictly below lastWinner,
// falling back to the overall largest. On the sorted waiting list that
// is the thermometer split of the kernel (bitarb.Vec.MaxBelow)
// specialized to a boundary lookup — no encode pass.
func (p *RR1) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	w := maxBelowOrMax(waiting, p.lastWinner)
	// Each agent records the winner's identity, excluding the RR bit.
	p.lastWinner = w
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *RR1) Reset() { p.lastWinner = 0 }

// RR2 is the second implementation: the extra line is a shared
// "low-request" line instead. An agent requesting the bus asserts
// low-request if its identity is below the previous winner's; when
// low-request is high at the start of an arbitration, only such agents
// compete. The grant sequence is identical to RR1's: if any low agent
// competes, the maximum low agent wins; otherwise the overall maximum
// wins.
type RR2 struct {
	n          int
	layout     ident.Layout
	lastWinner int
	scratch
}

// NewRR2 returns the low-request-line implementation for n agents.
func NewRR2(n int) *RR2 {
	return &RR2{n: n, layout: ident.LayoutFor(n)}
}

// Name implements Protocol.
func (p *RR2) Name() string { return "RR2" }

// N implements Protocol.
func (p *RR2) N() int { return p.n }

// LastWinner returns the recorded identity of the most recent winner.
func (p *RR2) LastWinner() int { return p.lastWinner }

// OnRequest implements Protocol.
func (p *RR2) OnRequest(int, float64) {}

// OnServiceStart implements Protocol.
func (p *RR2) OnServiceStart(int, float64) {}

// Arbitrate implements Protocol. The low-request line restricts the
// competition to identities below the previous winner when any such
// agent waits; the winner is therefore the same boundary lookup as
// RR1's — the largest waiting identity below lastWinner, else the
// overall largest (identical grant sequences, as the paper notes).
func (p *RR2) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	w := maxBelowOrMax(waiting, p.lastWinner)
	p.lastWinner = w
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *RR2) Reset() { p.lastWinner = 0 }

// RR3 is the third implementation: no extra line. Only agents with
// identities below the previous winner compete; a winning identity of
// zero (nobody competed) makes every agent record N+1 as the winner and
// a new arbitration starts immediately, in which no agent is inhibited.
// This costs an occasional extra arbitration pass — the paper calls it
// "somewhat less efficient" — which the simulator charges for.
type RR3 struct {
	n          int
	layout     ident.Layout
	lastWinner int
	scratch
}

// NewRR3 returns the no-extra-line implementation for n agents. The
// winner register starts at 0, so the very first arbitration is an empty
// pass that resets it to N+1; hardware coming out of reset does the same.
func NewRR3(n int) *RR3 {
	return &RR3{n: n, layout: ident.LayoutFor(n)}
}

// Name implements Protocol.
func (p *RR3) Name() string { return "RR3" }

// N implements Protocol.
func (p *RR3) N() int { return p.n }

// LastWinner returns the recorded identity of the most recent winner
// (N+1 immediately after an empty pass).
func (p *RR3) LastWinner() int { return p.lastWinner }

// OnRequest implements Protocol.
func (p *RR3) OnRequest(int, float64) {}

// OnServiceStart implements Protocol.
func (p *RR3) OnServiceStart(int, float64) {}

// Arbitrate implements Protocol. Only identities below lastWinner
// compete, so the settled maximum is the boundary lookup on the sorted
// waiting list; an empty segment is the empty pass.
func (p *RR3) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	i := boundary(waiting, p.lastWinner)
	if i == 0 {
		// Winning identity zero: no agent participated. Record N+1 and
		// rerun (§3.1, third implementation).
		p.lastWinner = p.n + 1
		return Outcome{Repass: true}
	}
	w := waiting[i-1]
	p.lastWinner = w
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *RR3) Reset() { p.lastWinner = 0 }
