package core

import (
	"sort"
	"testing"

	"busarb/internal/rng"
)

// fcfsOracle is a central (non-distributed) FCFS1 reference: the same
// lose-count/win-reset rule with an unbounded counter and global
// knowledge. It is what the distributed implementation must match when
// its counter field is wide enough.
type fcfsOracle struct {
	counter []int
}

func (o *fcfsOracle) arbitrate(waiting []int) int {
	best := waiting[0]
	for _, id := range waiting[1:] {
		if o.counter[id] > o.counter[best] ||
			(o.counter[id] == o.counter[best] && id > best) {
			best = id
		}
	}
	for _, id := range waiting {
		if id == best {
			o.counter[id] = 0
		} else {
			o.counter[id]++
		}
	}
	return best
}

// TestFCFS1CounterBound reconciles the §3.2 counter-width claim with the
// implementation: on request histories far longer than the counter's
// modulus, the full-width (ceil(log2 N) bits) FCFS1 grants exactly what
// the unbounded central oracle grants, and the oracle's counter never
// exceeds N-1 — so at full width neither saturation nor wrapping can
// ever engage, and the lose-counter needs no modular arithmetic at all.
func TestFCFS1CounterBound(t *testing.T) {
	for _, n := range []int{4, 10, 16} {
		p := NewFCFS1(n)
		oracle := &fcfsOracle{counter: make([]int, n+1)}
		src := rng.New(uint64(n))

		waiting := make([]bool, n+1)
		var ids []int
		maxCounter := 0
		const rounds = 4000 // ≫ the 2^ceil(log2 n) modulus
		for r := 0; r < rounds; r++ {
			// Random subset of idle agents issues requests (the bus stays
			// near saturation, which is where counters climb).
			for id := 1; id <= n; id++ {
				if !waiting[id] && src.Float64() < 0.7 {
					waiting[id] = true
					p.OnRequest(id, float64(r))
				}
			}
			ids = ids[:0]
			for id := 1; id <= n; id++ {
				if waiting[id] {
					ids = append(ids, id)
				}
			}
			if len(ids) == 0 {
				continue
			}
			sort.Ints(ids)
			got := p.Arbitrate(ids).Winner
			want := oracle.arbitrate(ids)
			if got != want {
				t.Fatalf("n=%d round %d: FCFS1 granted %d, unbounded oracle %d", n, r, got, want)
			}
			waiting[got] = false
			for id := 1; id <= n; id++ {
				if oracle.counter[id] > maxCounter {
					maxCounter = oracle.counter[id]
				}
			}
		}
		if maxCounter > n-1 {
			t.Errorf("n=%d: unbounded lose-counter reached %d, §3.2 bound is N-1=%d", n, maxCounter, n-1)
		}
		if maxCounter == 0 {
			t.Errorf("n=%d: history never exercised the counter", n)
		}
	}
}

// TestFCFS1NarrowCounterSaturationPreservesSeniority pins why a narrow
// counter must saturate rather than wrap ("overflow" in §3.2's terms):
// with a 1-bit counter, an agent that has lost twice wraps back to 0 and
// loses to a brand-new request, inverting FCFS order; the saturating
// implementation keeps it senior.
func TestFCFS1NarrowCounterSaturationPreservesSeniority(t *testing.T) {
	p := NewFCFS1Bits(4, 1)
	wrapped := []int{0, 0, 0, 0, 0} // the modular-counter alternative, by id

	wrappedArb := func(ids []int) int {
		best := ids[0]
		for _, id := range ids[1:] {
			if wrapped[id] > wrapped[best] || (wrapped[id] == wrapped[best] && id > best) {
				best = id
			}
		}
		for _, id := range ids {
			if id == best {
				wrapped[id] = 0
			} else {
				wrapped[id] = (wrapped[id] + 1) % 2
			}
		}
		return best
	}

	// Agent 1 requests alongside 3 and 4, then loses twice.
	for _, id := range []int{1, 3, 4} {
		p.OnRequest(id, 0)
	}
	if w := p.Arbitrate([]int{1, 3, 4}).Winner; w != 4 || wrappedArb([]int{1, 3, 4}) != 4 {
		t.Fatalf("first pass winner %d, want 4 (identity order at equal counters)", w)
	}
	if w := p.Arbitrate([]int{1, 3}).Winner; w != 3 || wrappedArb([]int{1, 3}) != 3 {
		t.Fatalf("second pass winner %d, want 3 (1-bit counters tie at 1)", w)
	}

	// Agent 1 has now waited through two losses; agent 2 is brand new.
	p.OnRequest(2, 1)
	if c := p.Counter(1); c != 1 {
		t.Fatalf("saturating counter of agent 1 = %d, want 1 (held at the field max)", c)
	}
	if wrapped[1] != 0 {
		t.Fatalf("wrapped counter of agent 1 = %d after two losses, want 0 (wrapped around)", wrapped[1])
	}
	if w := p.Arbitrate([]int{1, 2}).Winner; w != 1 {
		t.Errorf("saturating FCFS1 granted %d, want the senior agent 1", w)
	}
	if w := wrappedArb([]int{1, 2}); w != 2 {
		t.Errorf("wrapped counter granted %d; expected it to demonstrate the inversion (grant 2)", w)
	}
}
