package core

import (
	"fmt"

	"busarb/internal/ident"
)

// Priority-request integration (§2.4, §3.1, §3.2): an extra line carries
// a most-significant "urgent" bit, so all urgent requests win over all
// non-urgent ones; fairness scheduling continues underneath (and,
// optionally, within the urgent class).

// ClassRequester is implemented by protocols that distinguish urgent
// from non-urgent requests. The plain Protocol.OnRequest is equivalent
// to OnClassRequest with urgent=false.
type ClassRequester interface {
	Protocol
	// OnClassRequest records a request of the given class.
	OnClassRequest(id int, now float64, urgent bool)
}

// RRPriorityMode selects how urgent requests interact with the
// round-robin bit in PriorityRR (§3.1, first implementation).
type RRPriorityMode int

const (
	// RRIgnoreWithinClass: agents "ignore the round-robin protocol for
	// priority requests by always setting the round-robin priority bit
	// to 1 for these requests" — urgent requests are served in fixed
	// static-priority order.
	RRIgnoreWithinClass RRPriorityMode = iota
	// RRWithinClass: agents follow the protocol, implementing
	// round-robin scheduling within the priority class too.
	RRWithinClass
)

// PriorityRR is RR1 with the priority line: the arbitration number is
// [ priority bit | round-robin bit | static ID ].
type PriorityRR struct {
	n          int
	layout     ident.Layout
	mode       RRPriorityMode
	lastWinner int
	urgent     []bool
	scratch
}

// NewPriorityRR returns RR1 with priority integration for n agents.
func NewPriorityRR(n int, mode RRPriorityMode) *PriorityRR {
	return &PriorityRR{
		n:      n,
		layout: ident.Layout{StaticBits: ident.Width(n), RRBit: true, PriorityBit: true},
		mode:   mode,
		urgent: make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *PriorityRR) Name() string {
	if p.mode == RRWithinClass {
		return "RR1+prio/rr"
	}
	return "RR1+prio"
}

// N implements Protocol.
func (p *PriorityRR) N() int { return p.n }

// OnRequest implements Protocol (non-urgent).
func (p *PriorityRR) OnRequest(id int, now float64) { p.OnClassRequest(id, now, false) }

// OnClassRequest implements ClassRequester.
func (p *PriorityRR) OnClassRequest(id int, _ float64, urgent bool) { p.urgent[id] = urgent }

// OnServiceStart implements Protocol.
func (p *PriorityRR) OnServiceStart(id int, _ float64) { p.urgent[id] = false }

// Arbitrate implements Protocol.
func (p *PriorityRR) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	nums := p.numsBuf(len(waiting))
	for i, id := range waiting {
		rr := id < p.lastWinner
		if p.urgent[id] && p.mode == RRIgnoreWithinClass {
			rr = true
		}
		nums[i] = p.layout.Encode(ident.Number{Static: id, RR: rr, Priority: p.urgent[id]})
	}
	w := waiting[pickMax(nums)]
	// Recorded winner identity excludes the priority and RR bits.
	p.lastWinner = w
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *PriorityRR) Reset() {
	p.lastWinner = 0
	for i := range p.urgent {
		p.urgent[i] = false
	}
}

// FCFSCounterPolicy selects how non-priority waiting-time counters react
// to priority traffic in PriorityFCFS1 (§3.2 discusses three options).
type FCFSCounterPolicy int

const (
	// CounterOverflow ignores the problem: the counter increments on
	// every lost arbitration and wraps modulo-2^k when priority traffic
	// pushes it past the top — "may be the right approach if the
	// likelihood of overflow is small".
	CounterOverflow FCFSCounterPolicy = iota
	// CounterMatched increments only when the winning identity's
	// priority bit matches the agent's request class, so the counter
	// exactly counts same-class service intervals and cannot overflow.
	CounterMatched
)

// PriorityFCFS1 is FCFS1 with the priority line: the arbitration number
// is [ priority bit | counter | static ID ].
type PriorityFCFS1 struct {
	n       int
	layout  ident.Layout
	policy  FCFSCounterPolicy
	modulus int
	counter []int
	urgent  []bool
	// overflows counts wrap events under CounterOverflow, so experiments
	// can report how often the hazard fires.
	overflows int64
	scratch
}

// NewPriorityFCFS1 returns FCFS1 with priority integration for n agents.
func NewPriorityFCFS1(n int, policy FCFSCounterPolicy) *PriorityFCFS1 {
	bits := ident.Width(n)
	return &PriorityFCFS1{
		n:       n,
		layout:  ident.Layout{StaticBits: bits, CounterBits: bits, PriorityBit: true},
		policy:  policy,
		modulus: 1 << bits,
		counter: make([]int, n+1),
		urgent:  make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *PriorityFCFS1) Name() string {
	if p.policy == CounterMatched {
		return "FCFS1+prio/matched"
	}
	return "FCFS1+prio/overflow"
}

// N implements Protocol.
func (p *PriorityFCFS1) N() int { return p.n }

// Overflows returns how many counter wraps have occurred.
func (p *PriorityFCFS1) Overflows() int64 { return p.overflows }

// Counter returns agent id's waiting-time counter (for tests).
func (p *PriorityFCFS1) Counter(id int) int { return p.counter[id] }

// OnRequest implements Protocol (non-urgent).
func (p *PriorityFCFS1) OnRequest(id int, now float64) { p.OnClassRequest(id, now, false) }

// OnClassRequest implements ClassRequester.
func (p *PriorityFCFS1) OnClassRequest(id int, _ float64, urgent bool) {
	p.counter[id] = 0
	p.urgent[id] = urgent
}

// OnServiceStart implements Protocol.
func (p *PriorityFCFS1) OnServiceStart(id int, _ float64) { p.urgent[id] = false }

// Arbitrate implements Protocol.
func (p *PriorityFCFS1) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	nums := p.numsBuf(len(waiting))
	for i, id := range waiting {
		nums[i] = p.layout.Encode(ident.Number{
			Static:   id,
			Counter:  p.counter[id],
			Priority: p.urgent[id],
		})
	}
	w := waiting[pickMax(nums)]
	winnerUrgent := p.urgent[w]
	for _, id := range waiting {
		if id == w {
			p.counter[id] = 0
			continue
		}
		switch p.policy {
		case CounterOverflow:
			p.counter[id]++
			if p.counter[id] == p.modulus {
				p.counter[id] = 0
				p.overflows++
			}
		case CounterMatched:
			if p.urgent[id] == winnerUrgent && p.counter[id] < p.modulus-1 {
				p.counter[id]++
			}
		}
	}
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *PriorityFCFS1) Reset() {
	for i := range p.counter {
		p.counter[i] = 0
		p.urgent[i] = false
	}
	p.overflows = 0
}

// PriorityFCFS2 is FCFS2 with two increment lines, a-incr and
// a-incr-priority (§3.2, third option): a waiting agent increments its
// counter only when a new request of its own class arrives, so the
// counters "work as well as in the original scheme".
type PriorityFCFS2 struct {
	n       int
	layout  ident.Layout
	counter []int
	waiting []bool
	urgent  []bool
	lastT   [2]float64
	hasLast [2]bool
	scratch
}

// NewPriorityFCFS2 returns FCFS2 with dual increment lines for n agents.
func NewPriorityFCFS2(n int) *PriorityFCFS2 {
	return &PriorityFCFS2{
		n:       n,
		layout:  ident.Layout{StaticBits: ident.Width(n), CounterBits: ident.Width(n), PriorityBit: true},
		counter: make([]int, n+1),
		waiting: make([]bool, n+1),
		urgent:  make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *PriorityFCFS2) Name() string { return "FCFS2+prio" }

// N implements Protocol.
func (p *PriorityFCFS2) N() int { return p.n }

// OnRequest implements Protocol (non-urgent).
func (p *PriorityFCFS2) OnRequest(id int, now float64) { p.OnClassRequest(id, now, false) }

// OnClassRequest implements ClassRequester: the request pulses the
// increment line of its class; only same-class waiters count it.
func (p *PriorityFCFS2) OnClassRequest(id int, now float64, urgent bool) {
	cls := 0
	if urgent {
		cls = 1
	}
	samePulse := p.hasLast[cls] && now == p.lastT[cls]
	for a := 1; a <= p.n; a++ {
		if p.waiting[a] && p.urgent[a] == urgent {
			if samePulse && p.counter[a] == 0 {
				continue
			}
			if p.counter[a] < 1<<p.layout.CounterBits-1 {
				p.counter[a]++
			}
		}
	}
	p.counter[id] = 0
	p.waiting[id] = true
	p.urgent[id] = urgent
	p.lastT[cls], p.hasLast[cls] = now, true
}

// OnServiceStart implements Protocol.
func (p *PriorityFCFS2) OnServiceStart(id int, _ float64) {
	p.waiting[id] = false
	p.urgent[id] = false
}

// Arbitrate implements Protocol.
func (p *PriorityFCFS2) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	nums := p.numsBuf(len(waiting))
	for i, id := range waiting {
		nums[i] = p.layout.Encode(ident.Number{
			Static:   id,
			Counter:  p.counter[id],
			Priority: p.urgent[id],
		})
	}
	return Outcome{Winner: waiting[pickMax(nums)]}
}

// Reset implements Protocol.
func (p *PriorityFCFS2) Reset() {
	for i := range p.counter {
		p.counter[i] = 0
		p.waiting[i] = false
		p.urgent[i] = false
	}
	p.hasLast = [2]bool{}
	p.lastT = [2]float64{}
}

// Registry maps protocol names to factories, for CLIs and experiment
// configuration files.
var Registry = map[string]Factory{
	"FP":     func(n int) Protocol { return NewFixedPriority(n) },
	"RR1":    func(n int) Protocol { return NewRR1(n) },
	"RR2":    func(n int) Protocol { return NewRR2(n) },
	"RR3":    func(n int) Protocol { return NewRR3(n) },
	"FCFS1":  func(n int) Protocol { return NewFCFS1(n) },
	"FCFS2":  func(n int) Protocol { return NewFCFS2(n) },
	"AAP1":   func(n int) Protocol { return NewAAP1(n) },
	"AAP2":   func(n int) Protocol { return NewAAP2(n) },
	"Hybrid": func(n int) Protocol { return NewHybrid(n) },
	// Priority-integrated variants (§2.4, §3.1, §3.2), registered under
	// their Name() strings.
	"RR1+prio":            func(n int) Protocol { return NewPriorityRR(n, RRIgnoreWithinClass) },
	"RR1+prio/rr":         func(n int) Protocol { return NewPriorityRR(n, RRWithinClass) },
	"FCFS1+prio/overflow": func(n int) Protocol { return NewPriorityFCFS1(n, CounterOverflow) },
	"FCFS1+prio/matched":  func(n int) Protocol { return NewPriorityFCFS1(n, CounterMatched) },
	"FCFS2+prio":          func(n int) Protocol { return NewPriorityFCFS2(n) },
}

// ByName returns the factory registered under name.
func ByName(name string) (Factory, error) {
	f, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown protocol %q", name)
	}
	return f, nil
}

// Names returns all registered protocol names (unsorted).
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	return out
}
