package core

import (
	"testing"

	"busarb/internal/rng"
)

// classDriver extends the replay driver with urgent requests.
type classDriver struct {
	*driver
	cp ClassRequester
}

func newClassDriver(t *testing.T, p ClassRequester) *classDriver {
	return &classDriver{driver: newDriver(t, p), cp: p}
}

func (d *classDriver) requestClass(id int, now float64, urgent bool) {
	if d.waiting[id] {
		d.t.Fatalf("agent %d requested twice", id)
	}
	d.waiting[id] = true
	d.now = now
	d.cp.OnClassRequest(id, now, urgent)
}

func TestPriorityRRUrgentFirst(t *testing.T) {
	p := NewPriorityRR(8, RRIgnoreWithinClass)
	d := newClassDriver(t, p)
	d.requestClass(7, 0, false)
	d.requestClass(2, 0, true)
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want urgent 2 over non-urgent 7", w)
	}
	if w := d.arbitrate(); w != 7 {
		t.Fatalf("grant = %d, want 7", w)
	}
}

func TestPriorityRRNonUrgentStillRoundRobin(t *testing.T) {
	p := NewPriorityRR(8, RRIgnoreWithinClass)
	d := newClassDriver(t, p)
	d.requestClass(4, 0, false)
	d.requestClass(6, 0, false)
	if w := d.arbitrate(); w != 6 {
		t.Fatalf("grant = %d, want 6", w)
	}
	// lastWinner 6: agent 4 has RR priority over 8.
	d.requestClass(8, 1, false)
	if w := d.arbitrate(); w != 4 {
		t.Fatalf("grant = %d, want 4 (round-robin among non-urgent)", w)
	}
}

func TestPriorityRRWithinClassModes(t *testing.T) {
	// Two urgent requests; lastWinner = 5.
	// RRIgnoreWithinClass: both set the RR bit -> fixed priority: 7 wins.
	// RRWithinClass: the scan favors ids below 5 -> 3 wins.
	setup := func(mode RRPriorityMode) *classDriver {
		p := NewPriorityRR(8, mode)
		d := newClassDriver(t, p)
		d.requestClass(5, 0, false)
		if w := d.arbitrate(); w != 5 {
			t.Fatalf("setup grant = %d", w)
		}
		d.requestClass(3, 1, true)
		d.requestClass(7, 1, true)
		return d
	}
	if w := setup(RRIgnoreWithinClass).arbitrate(); w != 7 {
		t.Errorf("ignore mode: grant = %d, want 7 (fixed priority within class)", w)
	}
	if w := setup(RRWithinClass).arbitrate(); w != 3 {
		t.Errorf("within mode: grant = %d, want 3 (RR within class)", w)
	}
}

func TestPriorityRRAllUrgentNeverBlocked(t *testing.T) {
	// All-urgent traffic must still be serviced round-robin-ish without
	// deadlock in the within-class mode.
	p := NewPriorityRR(4, RRWithinClass)
	d := newClassDriver(t, p)
	counts := make([]int, 5)
	for id := 1; id <= 4; id++ {
		d.requestClass(id, 0, true)
	}
	for i := 0; i < 40; i++ {
		w := d.arbitrate()
		counts[w]++
		d.requestClass(w, float64(i+1), true)
	}
	for id := 1; id <= 4; id++ {
		if counts[id] != 10 {
			t.Errorf("agent %d served %d/40, want 10 (perfect RR within class)", id, counts[id])
		}
	}
}

func TestPriorityFCFS1MatchedCounterOnlyCountsOwnClass(t *testing.T) {
	p := NewPriorityFCFS1(8, CounterMatched)
	d := newClassDriver(t, p)
	d.requestClass(2, 0, false)
	d.requestClass(5, 0, true)
	d.requestClass(6, 0, true)
	// Urgent 6 wins; urgent 5 increments; non-urgent 2 does not (winner
	// class mismatch).
	if w := d.arbitrate(); w != 6 {
		t.Fatalf("grant = %d, want 6", w)
	}
	if p.Counter(5) != 1 {
		t.Errorf("counter(5) = %d, want 1", p.Counter(5))
	}
	if p.Counter(2) != 0 {
		t.Errorf("counter(2) = %d, want 0 (matched policy)", p.Counter(2))
	}
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5", w)
	}
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2", w)
	}
}

func TestPriorityFCFS1OverflowWraps(t *testing.T) {
	// With the overflow policy, a long stream of urgent wins can wrap a
	// waiting non-urgent counter back to zero.
	p := NewPriorityFCFS1(4, CounterOverflow) // 3 counter bits, modulus 8
	d := newClassDriver(t, p)
	d.requestClass(1, 0, false)
	for i := 0; i < 8; i++ {
		id := 2 + i%2
		d.requestClass(id, float64(i), true)
		if w := d.arbitrate(); w != id {
			t.Fatalf("urgent grant = %d, want %d", w, id)
		}
	}
	if p.Counter(1) != 0 {
		t.Errorf("counter(1) = %d, want 0 after 8 losses (wrapped)", p.Counter(1))
	}
	if p.Overflows() != 1 {
		t.Errorf("Overflows = %d, want 1", p.Overflows())
	}
}

func TestPriorityFCFS2DualLines(t *testing.T) {
	p := NewPriorityFCFS2(8)
	d := newClassDriver(t, p)
	d.requestClass(3, 0, false)
	// An urgent arrival pulses a-incr-priority: non-urgent 3 must NOT
	// increment.
	d.requestClass(6, 1, true)
	if p.counter[3] != 0 {
		t.Errorf("counter(3) = %d, want 0 (wrong-class pulse ignored)", p.counter[3])
	}
	// A non-urgent arrival pulses a-incr: 3 increments, urgent 6 not.
	d.requestClass(2, 2, false)
	if p.counter[3] != 1 {
		t.Errorf("counter(3) = %d, want 1", p.counter[3])
	}
	if p.counter[6] != 0 {
		t.Errorf("counter(6) = %d, want 0", p.counter[6])
	}
	// Urgent always first; then FCFS among non-urgent.
	if w := d.arbitrate(); w != 6 {
		t.Fatalf("grant = %d, want urgent 6", w)
	}
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3 (older non-urgent)", w)
	}
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2", w)
	}
}

// Property: under any mixed history, no non-urgent request is ever
// granted while an urgent request waits.
func TestUrgentAlwaysBeforeNonUrgentProperty(t *testing.T) {
	protos := []func(n int) ClassRequester{
		func(n int) ClassRequester { return NewPriorityRR(n, RRIgnoreWithinClass) },
		func(n int) ClassRequester { return NewPriorityRR(n, RRWithinClass) },
		func(n int) ClassRequester { return NewPriorityFCFS1(n, CounterOverflow) },
		func(n int) ClassRequester { return NewPriorityFCFS1(n, CounterMatched) },
		func(n int) ClassRequester { return NewPriorityFCFS2(n) },
	}
	src := rng.New(707)
	for _, mk := range protos {
		for trial := 0; trial < 30; trial++ {
			n := 2 + src.Intn(12)
			p := mk(n)
			d := newClassDriver(t, p)
			urgent := map[int]bool{}
			ops := randomHistory(src, n, 100)
			for _, o := range ops {
				if o.arrive {
					if d.waiting[o.id] {
						continue
					}
					u := src.Intn(3) == 0
					d.requestClass(o.id, o.time, u)
					urgent[o.id] = u
				} else {
					if len(d.waiting) == 0 {
						continue
					}
					w := d.arbitrate()
					if !urgent[w] {
						for id := range d.waiting {
							if urgent[id] {
								t.Fatalf("%s trial %d: non-urgent %d granted while urgent %d waits",
									p.Name(), trial, w, id)
							}
						}
					}
					delete(urgent, w)
				}
			}
		}
	}
}

func TestPriorityProtocolResets(t *testing.T) {
	pr := NewPriorityRR(4, RRWithinClass)
	pr.OnClassRequest(1, 0, true)
	pr.Arbitrate([]int{1})
	pr.Reset()
	if pr.lastWinner != 0 || pr.urgent[1] {
		t.Error("PriorityRR Reset incomplete")
	}
	pf := NewPriorityFCFS1(4, CounterOverflow)
	pf.OnClassRequest(1, 0, true)
	pf.OnClassRequest(2, 0, false)
	pf.Arbitrate([]int{1, 2})
	pf.Reset()
	if pf.Counter(2) != 0 || pf.Overflows() != 0 {
		t.Error("PriorityFCFS1 Reset incomplete")
	}
	p2 := NewPriorityFCFS2(4)
	p2.OnClassRequest(1, 0, true)
	p2.Reset()
	if p2.counter[1] != 0 || p2.waiting[1] || p2.urgent[1] {
		t.Error("PriorityFCFS2 Reset incomplete")
	}
}

func TestPriorityNames(t *testing.T) {
	cases := map[string]Protocol{
		"RR1+prio":            NewPriorityRR(4, RRIgnoreWithinClass),
		"RR1+prio/rr":         NewPriorityRR(4, RRWithinClass),
		"FCFS1+prio/overflow": NewPriorityFCFS1(4, CounterOverflow),
		"FCFS1+prio/matched":  NewPriorityFCFS1(4, CounterMatched),
		"FCFS2+prio":          NewPriorityFCFS2(4),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
		if p.N() != 4 {
			t.Errorf("%s N = %d", want, p.N())
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"FP", "RR1", "RR2", "RR3", "FCFS1", "FCFS2", "AAP1", "AAP2", "Hybrid"} {
		f, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		p := f(8)
		if p.N() != 8 {
			t.Errorf("%s factory built N=%d", name, p.N())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != len(Registry) {
		t.Error("Names() incomplete")
	}
}
