package core

import (
	"fmt"

	"busarb/internal/bitarb"
	"busarb/internal/ident"
)

// The distributed first-come first-serve protocol (§3.2). Each agent's
// arbitration number is the concatenation of a waiting-time counter
// (most significant) and its static identity (least significant). The
// counter is zeroed when a new request is generated and incremented on
// predefined global events while the request waits; the maximum-finding
// arbitration then favors the longest-waiting request. Two requests
// falling in the same counting interval are served in static-identity
// order — the source of the protocol's (small) residual unfairness,
// quantified in Table 4.1.

// FCFS1 is the simpler counting strategy: the counter is incremented
// each time the agent loses an arbitration, and reset on a win. With at
// most one outstanding request per agent the counter never exceeds N-1
// (a winner resets to 0 and can never again pass a still-waiting agent,
// because the counter is the number's most significant field), so a
// counter of ceil(log2 N) bits suffices (§3.2). At that width the
// saturation guard below never engages — the counter value is identical
// to an unbounded one, which TestFCFS1CounterBound pins against a
// central unbounded-counter oracle. Narrower counters saturate rather
// than wrap: §3.2's "allow the counter to overflow" (a modular counter)
// would rank a long-waiting agent behind a fresh request the moment its
// count wraps to 0, inverting the service order (see
// TestFCFS1NarrowCounterSaturationPreservesSeniority).
type FCFS1 struct {
	n       int
	layout  ident.Layout
	modulus int
	// The counters live as kernel bit-planes (bitarb.Counters): the
	// per-arbitration lose increment is one word-parallel saturating
	// add over the waiting bitmap, and the winner selection is the
	// (counter, identity) plane tournament MaxIn.
	ctr    *bitarb.Counters
	arbVec *bitarb.Vec // scratch: the waiting set as a bitmap
	scratch
}

// NewFCFS1 returns the lose-counting FCFS implementation for n agents.
func NewFCFS1(n int) *FCFS1 { return NewFCFS1Bits(n, ident.Width(n)) }

// NewFCFS1Bits returns FCFS1 with an explicit counter width. Narrower
// counters (the paper: "fewer bits in the dynamic portion should
// implement nearly ideal FCFS scheduling when the bus is not saturated")
// saturate instead of wrapping, since a wrapped counter would invert the
// service order; the hardware analogue is a saturating counter, which
// costs the same.
func NewFCFS1Bits(n, counterBits int) *FCFS1 {
	if counterBits < 1 {
		panic(fmt.Sprintf("core: FCFS1 needs at least 1 counter bit, got %d", counterBits))
	}
	return &FCFS1{
		n:       n,
		layout:  ident.Layout{StaticBits: ident.Width(n), CounterBits: counterBits},
		modulus: 1 << counterBits,
		ctr:     bitarb.NewCounters(counterBits, n),
		arbVec:  bitarb.NewVec(n),
	}
}

// Name implements Protocol.
func (p *FCFS1) Name() string {
	if p.modulus == 1<<ident.Width(p.n) {
		return "FCFS1"
	}
	return fmt.Sprintf("FCFS1/%db", p.layout.CounterBits)
}

// N implements Protocol.
func (p *FCFS1) N() int { return p.n }

// Counter returns agent id's current waiting-time counter (for tests).
func (p *FCFS1) Counter(id int) int { return p.ctr.Get(id) }

// OnRequest implements Protocol: a new request starts with counter 0.
func (p *FCFS1) OnRequest(id int, _ float64) { p.ctr.Zero(id) }

// OnServiceStart implements Protocol.
func (p *FCFS1) OnServiceStart(int, float64) {}

// Arbitrate implements Protocol. The composite number is (counter,
// static identity) lexicographically — exactly the kernel's counter
// bit-plane tournament (MaxIn, ties toward higher identity). The lose
// increment is one saturating word-parallel add over the losers.
func (p *FCFS1) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	v := p.arbVec
	v.Reset()
	for _, id := range waiting {
		v.Set(id)
	}
	w := p.ctr.MaxIn(v)
	// "Lose" increments (saturating at the field's maximum); "win"
	// resets.
	v.Clear(w)
	p.ctr.Zero(w)
	p.ctr.Inc(v)
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *FCFS1) Reset() { p.ctr.Reset() }

// FCFS2 is the more accurate counting strategy: an extra wired-OR line,
// a-incr, is pulsed by an agent when it generates a new request, and
// every waiting agent increments its counter on each pulse. The counter
// then counts the requests that arrived after this one, so the
// arbitration implements arrival-order service exactly, up to requests
// arriving within one a-incr propagation window (§3.2). In this
// continuous-time model, only requests arriving at the identical instant
// share a counter value.
type FCFS2 struct {
	n      int
	layout ident.Layout
	// Counters as kernel bit-planes and the waiting set as a bitmap:
	// an a-incr pulse is one word-parallel saturating increment over
	// the waiting agents, O(counter bits) per 64 agents instead of a
	// per-agent scan.
	ctr     *bitarb.Counters
	wait    *bitarb.Vec
	arbVec  *bitarb.Vec // scratch: the competing set as a bitmap
	lastT   float64     // time of the most recent a-incr pulse
	hasLast bool
	scratch
}

// NewFCFS2 returns the a-incr FCFS implementation for n agents. The
// counter needs only ceil(log2 N) bits: at most N-1 requests can arrive
// while an agent waits (each other agent can contribute at most one
// pulse that precedes this agent's grant).
func NewFCFS2(n int) *FCFS2 {
	w := ident.Width(n)
	return &FCFS2{
		n:      n,
		layout: ident.Layout{StaticBits: w, CounterBits: w},
		ctr:    bitarb.NewCounters(w, n),
		wait:   bitarb.NewVec(n),
		arbVec: bitarb.NewVec(n),
	}
}

// Name implements Protocol.
func (p *FCFS2) Name() string { return "FCFS2" }

// N implements Protocol.
func (p *FCFS2) N() int { return p.n }

// Counter returns agent id's current waiting-time counter (for tests).
func (p *FCFS2) Counter(id int) int { return p.ctr.Get(id) }

// OnRequest implements Protocol: the new requester pulses a-incr; every
// already-waiting agent increments. Requests at the identical instant
// see each other's pulse as one (they are inside the sensing window) and
// share counter values — IncExceptZero skips the counter-0 agents that
// arrived in the same window.
func (p *FCFS2) OnRequest(id int, now float64) {
	if p.hasLast && now == p.lastT {
		p.ctr.IncExceptZero(p.wait)
	} else {
		p.ctr.Inc(p.wait)
	}
	p.ctr.Zero(id)
	p.wait.Set(id)
	p.lastT, p.hasLast = now, true
}

// OnServiceStart implements Protocol.
func (p *FCFS2) OnServiceStart(id int, _ float64) { p.wait.Clear(id) }

// Arbitrate implements Protocol: the same (counter, identity) plane
// tournament as FCFS1; the counters only move on a-incr pulses.
func (p *FCFS2) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	v := p.arbVec
	v.Reset()
	for _, id := range waiting {
		v.Set(id)
	}
	return Outcome{Winner: p.ctr.MaxIn(v)}
}

// Reset implements Protocol.
func (p *FCFS2) Reset() {
	p.ctr.Reset()
	p.wait.Reset()
	p.hasLast = false
	p.lastT = 0
}

// Hybrid is the §5 "further research" combination: round-robin order
// among requests that arrive in the same counting interval, FCFS across
// intervals. It is FCFS2's counter with RR1's round-robin bit below it:
// the counter dominates (FCFS between intervals); within a counter tie
// the RR bit implements the round-robin scan instead of fixed priority.
type Hybrid struct {
	n          int
	layout     ident.Layout
	counter    []int
	waiting    []bool
	lastWinner int
	lastT      float64
	hasLast    bool
	scratch
}

// NewHybrid returns the hybrid protocol for n agents.
func NewHybrid(n int) *Hybrid {
	return &Hybrid{
		n:       n,
		layout:  ident.Layout{StaticBits: ident.Width(n), RRBit: true, CounterBits: ident.Width(n)},
		counter: make([]int, n+1),
		waiting: make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *Hybrid) Name() string { return "Hybrid" }

// N implements Protocol.
func (p *Hybrid) N() int { return p.n }

// OnRequest implements Protocol (FCFS2's a-incr counting).
func (p *Hybrid) OnRequest(id int, now float64) {
	samePulse := p.hasLast && now == p.lastT
	for a := 1; a <= p.n; a++ {
		if p.waiting[a] {
			if samePulse && p.counter[a] == 0 {
				continue
			}
			if p.counter[a] < 1<<p.layout.CounterBits-1 {
				p.counter[a]++
			}
		}
	}
	p.counter[id] = 0
	p.waiting[id] = true
	p.lastT, p.hasLast = now, true
}

// OnServiceStart implements Protocol.
func (p *Hybrid) OnServiceStart(id int, _ float64) { p.waiting[id] = false }

// Arbitrate implements Protocol.
func (p *Hybrid) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	nums := p.numsBuf(len(waiting))
	for i, id := range waiting {
		nums[i] = p.layout.Encode(ident.Number{
			Static:  id,
			RR:      id < p.lastWinner,
			Counter: p.counter[id],
		})
	}
	w := waiting[pickMax(nums)]
	p.lastWinner = w
	return Outcome{Winner: w}
}

// Reset implements Protocol.
func (p *Hybrid) Reset() {
	for i := range p.counter {
		p.counter[i] = 0
		p.waiting[i] = false
	}
	p.lastWinner = 0
	p.hasLast = false
	p.lastT = 0
}
