package core

import (
	"testing"

	"busarb/internal/central"
	"busarb/internal/rng"
)

func TestRR1ScanOrder(t *testing.T) {
	// After agent j wins, the scan is j-1..1 then N..j (§3.1).
	p := NewRR1(8)
	d := newDriver(t, p)
	for id := 1; id <= 8; id++ {
		d.request(id)
	}
	// First arbitration: lastWinner=0, degenerates to fixed priority.
	if w := d.arbitrate(); w != 8 {
		t.Fatalf("first grant = %d, want 8", w)
	}
	// Then the scan proceeds 7, 6, ..., 1.
	for want := 7; want >= 1; want-- {
		if w := d.arbitrate(); w != want {
			t.Fatalf("grant = %d, want %d", w, want)
		}
	}
}

func TestRR1WrapAround(t *testing.T) {
	p := NewRR1(5)
	d := newDriver(t, p)
	d.request(2)
	d.request(4)
	if w := d.arbitrate(); w != 4 {
		t.Fatalf("grant = %d, want 4", w)
	}
	// lastWinner=4: agent 2 (below 4) has RR priority over agent 5.
	d.request(5)
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2 (RR bit beats higher static id)", w)
	}
	// lastWinner=2: only 5 waits; 5 >= 2, wins via upper scan half.
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5", w)
	}
}

func TestRR1NoStarvation(t *testing.T) {
	// Under continuous full contention, every agent is served exactly
	// once per N grants.
	const n = 16
	p := NewRR1(n)
	d := newDriver(t, p)
	for id := 1; id <= n; id++ {
		d.request(id)
	}
	counts := make([]int, n+1)
	for round := 0; round < 10; round++ {
		for i := 0; i < n; i++ {
			w := d.arbitrate()
			counts[w]++
			d.request(w) // immediately re-request: saturated bus
		}
	}
	for id := 1; id <= n; id++ {
		if counts[id] != 10 {
			t.Errorf("agent %d served %d times in 10 rounds, want 10", id, counts[id])
		}
	}
}

func TestRR3RepassSemantics(t *testing.T) {
	p := NewRR3(6)
	// lastWinner starts 0: first pass is empty and must repass.
	out := p.Arbitrate([]int{3, 5})
	if !out.Repass || out.Winner != 0 {
		t.Fatalf("first pass = %+v, want repass", out)
	}
	if p.LastWinner() != 7 {
		t.Fatalf("after empty pass, recorded winner = %d, want N+1 = 7", p.LastWinner())
	}
	out = p.Arbitrate([]int{3, 5})
	if out.Repass || out.Winner != 5 {
		t.Fatalf("second pass = %+v, want winner 5", out)
	}
	// Now only 6 waits: 6 >= 5 so another empty pass.
	out = p.Arbitrate([]int{6})
	if !out.Repass {
		t.Fatalf("pass with only higher ids = %+v, want repass", out)
	}
	out = p.Arbitrate([]int{6})
	if out.Winner != 6 {
		t.Fatalf("after reset, winner = %d, want 6", out.Winner)
	}
}

// The three RR implementations must produce identical grant sequences on
// arbitrary histories.
func TestRRImplementationsEquivalent(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(20)
		ops := randomHistory(src, n, 120)
		g1 := replay(t, NewRR1(n), ops)
		g2 := replay(t, NewRR2(n), ops)
		g3 := replay(t, NewRR3(n), ops)
		if !equalInts(g1, g2) {
			t.Fatalf("trial %d (n=%d): RR1 %v != RR2 %v", trial, n, g1, g2)
		}
		if !equalInts(g1, g3) {
			t.Fatalf("trial %d (n=%d): RR1 %v != RR3 %v", trial, n, g1, g3)
		}
	}
}

// The paper's claim (§1): the distributed RR protocol implements "true
// round-robin scheduling, identical to the central round-robin arbiter".
func TestRRMatchesCentralOracle(t *testing.T) {
	src := rng.New(202)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(20)
		ops := randomHistory(src, n, 120)
		grants := replay(t, NewRR1(n), ops)

		// Replay the same effective history through the central arbiter.
		oracle := central.NewRoundRobin(n)
		waiting := map[int]bool{}
		var want []int
		for _, o := range ops {
			if o.arrive {
				if waiting[o.id] {
					continue
				}
				waiting[o.id] = true
			} else {
				if len(waiting) == 0 {
					continue
				}
				ids := make([]int, 0, len(waiting))
				for id := range waiting {
					ids = append(ids, id)
				}
				w := oracle.Grant(ids)
				delete(waiting, w)
				want = append(want, w)
			}
		}
		if !equalInts(grants, want) {
			t.Fatalf("trial %d (n=%d): distributed %v != central %v", trial, n, grants, want)
		}
	}
}

func TestRRReset(t *testing.T) {
	for _, p := range []Protocol{NewRR1(4), NewRR2(4), NewRR3(4)} {
		p.Arbitrate([]int{1, 2})
		if out := p.Arbitrate([]int{1, 2}); out.Repass {
			p.Arbitrate([]int{1, 2})
		}
		p.Reset()
		// After reset, RR1/RR2 grant max id; RR3 repasses first.
		out := p.Arbitrate([]int{1, 3})
		if out.Repass {
			out = p.Arbitrate([]int{1, 3})
		}
		if out.Winner != 3 {
			t.Errorf("%s after Reset: winner = %d, want 3", p.Name(), out.Winner)
		}
	}
}

func TestRRNames(t *testing.T) {
	if NewRR1(4).Name() != "RR1" || NewRR2(4).Name() != "RR2" || NewRR3(4).Name() != "RR3" {
		t.Error("names wrong")
	}
	if NewRR1(4).N() != 4 {
		t.Error("N wrong")
	}
}

func TestValidateWaitingPanics(t *testing.T) {
	cases := [][]int{{}, {0}, {1, 1}, {2, 1}, {9}}
	for _, waiting := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("waiting=%v did not panic", waiting)
				}
			}()
			NewRR1(8).Arbitrate(waiting)
		}()
	}
}
