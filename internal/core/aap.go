package core

import "busarb/internal/ident"

// The two assured access protocols of §2.2 — the fairness mechanisms
// the 1980s bus standards actually shipped, and the baselines whose
// unfairness (Table 4.1(b), [VeLe88]) motivates the paper.

// AAP1 is the batching protocol adopted by Fastbus, NuBus, and
// Multibus II: requests that arrive while the shared request line is low
// assert it and form a batch; an agent in the batch competes in every
// arbitration until served; requests generated while a batch is in
// progress wait for the batch to end. Each batch member releases the
// request line at the start of its tenure, so the line drops — ending
// the batch — when the last member becomes master; every request waiting
// at that moment forms the next batch. Within a batch, service order is
// descending static identity (the raw contention arbitration), which is
// what makes the protocol unfair.
type AAP1 struct {
	n       int
	layout  ident.Layout
	inBatch []bool
	pending []bool
	batchSz int
	gen     int64
	scratch
}

// NewAAP1 returns the Fastbus/NuBus/Multibus II assured access protocol
// for n agents.
func NewAAP1(n int) *AAP1 {
	return &AAP1{
		n:       n,
		layout:  ident.LayoutFor(n),
		inBatch: make([]bool, n+1),
		pending: make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *AAP1) Name() string { return "AAP1" }

// N implements Protocol.
func (p *AAP1) N() int { return p.n }

// InBatch reports whether agent id is in the current batch (for tests).
func (p *AAP1) InBatch(id int) bool { return p.inBatch[id] }

// BatchGen returns a counter that increments each time a new batch
// forms, for tests and trace output.
func (p *AAP1) BatchGen() int64 { return p.gen }

// OnRequest implements Protocol: the request joins the batch if the
// request line is low (no batch in progress), else it waits for the
// batch boundary.
func (p *AAP1) OnRequest(id int, _ float64) {
	if p.batchSz == 0 {
		p.inBatch[id] = true
		p.batchSz = 1
		p.gen++
		return
	}
	p.pending[id] = true
}

// OnServiceStart implements Protocol: the new master releases the
// request line; if it was the last batch member, the line drops and all
// pending requests form the next batch.
func (p *AAP1) OnServiceStart(id int, _ float64) {
	if !p.inBatch[id] {
		return
	}
	p.inBatch[id] = false
	p.batchSz--
	if p.batchSz == 0 {
		for a := 1; a <= p.n; a++ {
			if p.pending[a] {
				p.pending[a] = false
				p.inBatch[a] = true
				p.batchSz++
			}
		}
		if p.batchSz > 0 {
			p.gen++
		}
	}
}

// Arbitrate implements Protocol: batch members compete on static
// identity.
func (p *AAP1) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	comps := p.compsBuf()
	for _, id := range waiting {
		if p.inBatch[id] {
			comps = append(comps, id)
		}
	}
	p.keepComps(comps)
	if len(comps) == 0 {
		// Unreachable under the simulator's contract (a waiting agent is
		// in the batch or pending, and the batch is non-empty whenever
		// anyone waits), but arbitrating among all waiters is the safe
		// hardware-like fallback.
		comps = waiting
	}
	nums := p.numsBuf(len(comps))
	for i, id := range comps {
		nums[i] = p.layout.Encode(ident.Number{Static: id})
	}
	return Outcome{Winner: comps[pickMax(nums)]}
}

// Reset implements Protocol.
func (p *AAP1) Reset() {
	for i := range p.inBatch {
		p.inBatch[i] = false
		p.pending[i] = false
	}
	p.batchSz = 0
}

// AAP2 is the Futurebus assured access protocol: an agent competes in
// successive arbitrations until served, then marks itself "inhibited"
// and neither asserts the request line nor competes until a fairness
// release — an arbitration cycle in which no agent asserts the request
// line (all outstanding requests inhibited, or none outstanding). Unlike
// AAP1, a request generated mid-batch may join the current batch if its
// agent has not yet been served in it.
type AAP2 struct {
	n         int
	layout    ident.Layout
	inhibited []bool
	waiting   []bool
	releases  int64
	scratch
}

// NewAAP2 returns the Futurebus assured access protocol for n agents.
func NewAAP2(n int) *AAP2 {
	return &AAP2{
		n:         n,
		layout:    ident.LayoutFor(n),
		inhibited: make([]bool, n+1),
		waiting:   make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *AAP2) Name() string { return "AAP2" }

// N implements Protocol.
func (p *AAP2) N() int { return p.n }

// Inhibited reports whether agent id is inhibited (for tests).
func (p *AAP2) Inhibited(id int) bool { return p.inhibited[id] }

// ReleaseGen returns a counter incremented on every fairness release,
// for tests and trace output.
func (p *AAP2) ReleaseGen() int64 { return p.releases }

// OnRequest implements Protocol.
func (p *AAP2) OnRequest(id int, _ float64) { p.waiting[id] = true }

// OnServiceStart implements Protocol: the agent marks itself inhibited
// at the end of its tenure; since an agent has at most one outstanding
// request, marking at the start of tenure is equivalent. If no
// un-inhibited request remains on the bus afterwards, the request line
// is low at the next arbitration opportunity — a fairness release (§2.2:
// "either there are no outstanding requests, or all agents with
// outstanding requests are inhibited").
func (p *AAP2) OnServiceStart(id int, _ float64) {
	p.waiting[id] = false
	p.inhibited[id] = true
	for a := 1; a <= p.n; a++ {
		if p.waiting[a] && !p.inhibited[a] {
			return
		}
	}
	p.release()
}

func (p *AAP2) release() {
	for i := range p.inhibited {
		p.inhibited[i] = false
	}
	p.releases++
}

// Arbitrate implements Protocol. The release normally fires in
// OnServiceStart the moment the last active request is served; the
// in-arbitration release here covers the remaining case of an inhibited
// agent re-requesting before its flag cleared.
func (p *AAP2) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	comps := p.compsBuf()
	for _, id := range waiting {
		if !p.inhibited[id] {
			comps = append(comps, id)
		}
	}
	p.keepComps(comps)
	if len(comps) == 0 {
		p.release()
		comps = waiting
	}
	nums := p.numsBuf(len(comps))
	for i, id := range comps {
		nums[i] = p.layout.Encode(ident.Number{Static: id})
	}
	return Outcome{Winner: comps[pickMax(nums)]}
}

// Reset implements Protocol.
func (p *AAP2) Reset() {
	for i := range p.inhibited {
		p.inhibited[i] = false
		p.waiting[i] = false
	}
	p.releases = 0
}
