package core

import "busarb/internal/ident"

// TicketFCFS is the prior-art distributed FCFS the paper cites
// ([ShAh81], "A First-Come-First-Serve Bus Allocation Scheme Using
// Ticket Assignments"): a requesting agent draws a ticket from a
// bus-visible counter and the lowest outstanding ticket is served next.
//
// Tickets are taken modulo 2^k, so ordering is by circular distance
// from the oldest outstanding ticket; with fewer than 2^(k-1) requests
// outstanding the order is exact. The scheme's practical weakness —
// the reason the paper calls its own counter-based FCFS "the first
// practical proposal" — is the ticket dispenser itself: drawing a
// ticket must be serialized on the bus, costing an extra bus operation
// per request that the paper's a-incr pulse avoids. The simulator
// exposes that cost as TicketCycles for cost accounting (the scheduling
// behavior is identical to an exact FCFS queue).
type TicketFCFS struct {
	n       int
	layout  ident.Layout
	modulus int
	next    int
	ticket  []int
	holds   []bool
	scratch
	// TicketCycles counts ticket-dispense operations (one per request):
	// bus cycles a real implementation would spend beyond the paper's
	// protocols.
	TicketCycles int64
}

// NewTicketFCFS builds the ticket scheme for n agents. The ticket
// counter is 2k bits wide (k = ceil(log2(N+1))), enough to keep
// circular comparison exact for any outstanding set.
func NewTicketFCFS(n int) *TicketFCFS {
	k := ident.Width(n)
	return &TicketFCFS{
		n:       n,
		layout:  ident.Layout{StaticBits: k, CounterBits: 2 * k},
		modulus: 1 << (2 * k),
		ticket:  make([]int, n+1),
		holds:   make([]bool, n+1),
	}
}

// Name implements Protocol.
func (p *TicketFCFS) Name() string { return "Ticket" }

// N implements Protocol.
func (p *TicketFCFS) N() int { return p.n }

// OnRequest implements Protocol: the agent draws the next ticket (a
// serialized bus operation in the real scheme).
func (p *TicketFCFS) OnRequest(id int, _ float64) {
	p.ticket[id] = p.next
	p.holds[id] = true
	p.next = (p.next + 1) % p.modulus
	p.TicketCycles++
}

// OnServiceStart implements Protocol.
func (p *TicketFCFS) OnServiceStart(id int, _ float64) { p.holds[id] = false }

// Arbitrate implements Protocol: the oldest ticket wins. The agents
// map circular ticket age onto the counter field so the standard
// maximum-finding arbitration selects it (older = larger age).
func (p *TicketFCFS) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	// Age is measured backwards from the dispenser's next value; with a
	// 2k-bit counter and at most N outstanding tickets, ages never
	// wrap ambiguously.
	nums := p.numsBuf(len(waiting))
	for i, id := range waiting {
		age := (p.next - p.ticket[id] + p.modulus) % p.modulus
		if age >= p.modulus {
			age = p.modulus - 1
		}
		nums[i] = p.layout.Encode(ident.Number{Static: id, Counter: age % p.modulus})
	}
	return Outcome{Winner: waiting[pickMax(nums)]}
}

// Reset implements Protocol.
func (p *TicketFCFS) Reset() {
	p.next = 0
	p.TicketCycles = 0
	for i := range p.ticket {
		p.ticket[i] = 0
		p.holds[i] = false
	}
}

func init() {
	Registry["Ticket"] = func(n int) Protocol { return NewTicketFCFS(n) }
}
