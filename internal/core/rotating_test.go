package core

import (
	"testing"
	"testing/quick"

	"busarb/internal/rng"
)

func TestRotatingDynUndynBijection(t *testing.T) {
	f := func(nRaw, jRaw, idRaw uint8) bool {
		n := 2 + int(nRaw%30)
		j := 1 + int(jRaw)%n
		id := 1 + int(idRaw)%n
		p := NewRotatingRR(n)
		d := p.dyn(id, j)
		if d < 1 || d > n {
			return false
		}
		return p.undyn(d, j) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRotatingScanOrder(t *testing.T) {
	// Base j: priority j-1 > j-2 > ... > 1 > N > ... > j.
	p := NewRotatingRR(8)
	j := 5
	if p.dyn(4, j) != 8 {
		t.Errorf("dyn(4|5) = %d, want 8 (scan head)", p.dyn(4, j))
	}
	if p.dyn(5, j) != 1 {
		t.Errorf("dyn(5|5) = %d, want 1 (just served)", p.dyn(5, j))
	}
	if !(p.dyn(1, j) > p.dyn(8, j)) {
		t.Error("id 1 must outrank id N in the wrapped scan")
	}
}

// A healthy rotating-priority system schedules identically to the
// paper's static-identity RR1.
func TestRotatingEqualsRR1WhenHealthy(t *testing.T) {
	src := rng.New(77)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(16)
		ops := randomHistory(src, n, 120)
		rot := replay(t, NewRotatingRR(n), ops)
		rr1 := NewRR1(n)
		// Align initial conditions: RotatingRR starts as if agent N had
		// just been served.
		rr1.SetLastWinner(n)
		static := replay(t, rr1, ops)
		if !equalInts(rot, static) {
			t.Fatalf("trial %d (n=%d): rotating %v != RR1 %v", trial, n, rot, static)
		}
	}
}

func TestRotatingHealthyNoCollisions(t *testing.T) {
	src := rng.New(78)
	p := NewRotatingRR(12)
	d := newDriver(t, p)
	for i := 0; i < 500; i++ {
		if src.Intn(2) == 0 || len(d.waiting) == 0 {
			id := 1 + src.Intn(12)
			if !d.waiting[id] {
				d.request(id)
			}
		} else {
			d.arbitrate()
		}
	}
	if p.Collisions != 0 {
		t.Errorf("healthy system recorded %d collisions", p.Collisions)
	}
}

// The paper's robustness argument, demonstrated: one corrupted rotation
// base desynchronizes the dynamic scheme permanently — the agent keeps
// decoding winners through its wrong base and collisions occur — while
// the static scheme heals at the very next arbitration because the
// winner's true identity is on the lines.
func TestRotatingCorruptionPersists(t *testing.T) {
	const n = 8
	p := NewRotatingRR(n)
	d := newDriver(t, p)
	// Saturate and let it run healthy for a bit.
	for id := 1; id <= n; id++ {
		d.request(id)
	}
	for i := 0; i < 3*n; i++ {
		w := d.arbitrate()
		d.request(w)
	}
	if p.Collisions != 0 {
		t.Fatalf("collisions before corruption: %d", p.Collisions)
	}
	// Fault: agent 3 missed an arbitration and holds a stale base.
	p.Corrupt(3, (p.Base(1)+3)%n+1)
	desyncSeen, collisionSeen := false, false
	for i := 0; i < 40*n; i++ {
		w := d.arbitrate()
		d.request(w)
		if p.Base(3) != p.Base(1) {
			desyncSeen = true
		}
		if p.Collisions > 0 {
			collisionSeen = true
		}
	}
	if !desyncSeen {
		t.Error("corruption did not desynchronize the rotating scheme")
	}
	if !collisionSeen {
		t.Error("persistent desync never produced an arbitration collision")
	}
	// And it never heals: the bases still disagree after 320 grants.
	if p.Base(3) == p.Base(1) {
		t.Error("rotating scheme resynchronized (it has no mechanism to)")
	}
}

func TestRR1CorruptionHealsInOneArbitration(t *testing.T) {
	const n = 8
	p := NewRR1(n)
	d := newDriver(t, p)
	for id := 1; id <= n; id++ {
		d.request(id)
	}
	for i := 0; i < n; i++ {
		w := d.arbitrate()
		d.request(w)
	}
	// Fault: the winner register is corrupted (e.g. one agent glitched;
	// in hardware each agent has its own copy, all rewritten from the
	// bus each arbitration — the shared register here is that fact).
	p.SetLastWinner(3)
	w := d.arbitrate() // possibly out-of-order grant
	d.request(w)
	// From the next arbitration on, the register again equals the true
	// last winner: the distributed state is consistent.
	if p.LastWinner() != w {
		t.Fatalf("register %d != true winner %d after one arbitration", p.LastWinner(), w)
	}
	// And the schedule is again perfect round-robin: each agent served
	// exactly once per N grants.
	counts := make([]int, n+1)
	for i := 0; i < 3*n; i++ {
		g := d.arbitrate()
		counts[g]++
		d.request(g)
	}
	for id := 1; id <= n; id++ {
		if counts[id] != 3 {
			t.Errorf("agent %d served %d/24 after healing, want 3", id, counts[id])
		}
	}
}

// Under saturation, a desynchronized rotating scheme distributes grants
// unevenly while RR1 stays perfectly fair.
func TestRotatingDesyncUnfairness(t *testing.T) {
	const n = 8
	p := NewRotatingRR(n)
	d := newDriver(t, p)
	for id := 1; id <= n; id++ {
		d.request(id)
	}
	p.Corrupt(2, 5)
	p.Corrupt(6, 3)
	counts := make([]int, n+1)
	const rounds = 50
	for i := 0; i < rounds*n; i++ {
		w := d.arbitrate()
		counts[w]++
		d.request(w)
	}
	lo, hi := counts[1], counts[1]
	for id := 2; id <= n; id++ {
		if counts[id] < lo {
			lo = counts[id]
		}
		if counts[id] > hi {
			hi = counts[id]
		}
	}
	if hi-lo < rounds/5 {
		t.Errorf("desynced rotating scheme stayed fair (%v); expected skew", counts[1:])
	}
}

func TestRotatingRegistryAndReset(t *testing.T) {
	f, err := ByName("RotRR")
	if err != nil {
		t.Fatal(err)
	}
	p := f(6).(*RotatingRR)
	p.Corrupt(1, 3)
	p.Collisions = 5
	p.Reset()
	if p.Base(1) != 6 || p.Collisions != 0 {
		t.Error("Reset incomplete")
	}
	if p.Name() != "RotRR" || p.N() != 6 {
		t.Error("metadata wrong")
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}
