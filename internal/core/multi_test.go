package core

import (
	"sort"
	"testing"

	"busarb/internal/rng"
)

// multiDriver tracks per-agent outstanding request counts for MultiFCFS.
type multiDriver struct {
	t    *testing.T
	p    *MultiFCFS
	outs []int
	now  float64
}

func newMultiDriver(t *testing.T, p *MultiFCFS) *multiDriver {
	return &multiDriver{t: t, p: p, outs: make([]int, p.N()+1)}
}

func (d *multiDriver) request(id int, now float64) {
	d.now = now
	d.outs[id]++
	d.p.OnRequest(id, now)
}

func (d *multiDriver) waitingIDs() []int {
	var ids []int
	for id := 1; id <= d.p.N(); id++ {
		if d.outs[id] > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

func (d *multiDriver) arbitrate() int {
	out := d.p.Arbitrate(d.waitingIDs())
	d.outs[out.Winner]--
	d.p.OnServiceStart(out.Winner, d.now)
	return out.Winner
}

func TestMultiFCFSGlobalArrivalOrder(t *testing.T) {
	p := NewMultiFCFS(4, 3)
	d := newMultiDriver(t, p)
	// Arrivals: (2, t1) (2, t2) (4, t3) (1, t4) (2, t5).
	d.request(2, 1)
	d.request(2, 2)
	d.request(4, 3)
	d.request(1, 4)
	d.request(2, 5)
	want := []int{2, 2, 4, 1, 2}
	for i, w := range want {
		if g := d.arbitrate(); g != w {
			t.Fatalf("grant %d = %d, want %d", i, g, w)
		}
	}
}

func TestMultiFCFSInterleavedServiceAndArrivals(t *testing.T) {
	p := NewMultiFCFS(4, 2)
	d := newMultiDriver(t, p)
	d.request(3, 1)
	d.request(1, 2)
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3", w)
	}
	d.request(3, 3) // 3's second request is younger than 1's
	if w := d.arbitrate(); w != 1 {
		t.Fatalf("grant = %d, want 1", w)
	}
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3", w)
	}
}

func TestMultiFCFSMatchesGlobalQueueProperty(t *testing.T) {
	src := rng.New(808)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(8)
		r := 1 + src.Intn(4)
		p := NewMultiFCFS(n, r)
		d := newMultiDriver(t, p)
		// A global FIFO of (agent, seq) in arrival order; ties cannot
		// occur since times strictly increase here.
		var queue []int
		now := 0.0
		var got, want []int
		for step := 0; step < 200; step++ {
			now += 1
			if src.Intn(2) == 0 {
				id := 1 + src.Intn(n)
				if d.outs[id] >= r {
					continue
				}
				d.request(id, now)
				queue = append(queue, id)
			} else {
				if len(queue) == 0 {
					continue
				}
				want = append(want, queue[0])
				queue = queue[1:]
				got = append(got, d.arbitrate())
			}
		}
		if !equalInts(got, want) {
			t.Fatalf("trial %d (n=%d r=%d): grants %v != arrival order %v", trial, n, r, got, want)
		}
	}
}

func TestMultiFCFSWindowEnforced(t *testing.T) {
	p := NewMultiFCFS(2, 2)
	p.OnRequest(1, 0)
	p.OnRequest(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("third outstanding request did not panic")
		}
	}()
	p.OnRequest(1, 2)
}

func TestMultiFCFSExtraBits(t *testing.T) {
	// §3.2: "if one allows each agent to have up to 8 requests
	// outstanding, first come first serve can still be implemented with
	// only 3 more lines".
	cases := []struct{ r, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {9, 4}}
	for _, c := range cases {
		p := NewMultiFCFS(30, c.r)
		if got := p.ExtraCounterBits(); got != c.want {
			t.Errorf("r=%d: ExtraCounterBits = %d, want %d", c.r, got, c.want)
		}
	}
	p := NewMultiFCFS(30, 8)
	if p.Name() != "FCFSx8" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.MaxOutstanding() != 8 {
		t.Error("MaxOutstanding wrong")
	}
}

func TestMultiFCFSQueueLen(t *testing.T) {
	p := NewMultiFCFS(4, 3)
	p.OnRequest(2, 0)
	p.OnRequest(2, 1)
	if p.QueueLen(2) != 2 {
		t.Errorf("QueueLen = %d, want 2", p.QueueLen(2))
	}
	p.OnServiceStart(2, 2)
	if p.QueueLen(2) != 1 {
		t.Errorf("QueueLen = %d, want 1", p.QueueLen(2))
	}
}

func TestMultiFCFSPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("r=0 did not panic")
			}
		}()
		NewMultiFCFS(4, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("service with empty queue did not panic")
			}
		}()
		NewMultiFCFS(4, 2).OnServiceStart(1, 0)
	}()
}

func TestMultiFCFSReset(t *testing.T) {
	p := NewMultiFCFS(4, 2)
	p.OnRequest(1, 0)
	p.Reset()
	if p.QueueLen(1) != 0 {
		t.Error("Reset left queued requests")
	}
}

// With r=1, MultiFCFS degenerates to FCFS2's behavior.
func TestMultiFCFSR1MatchesFCFS2(t *testing.T) {
	src := rng.New(909)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.Intn(12)
		ops := randomHistory(src, n, 100)
		// Strip simultaneous arrivals: MultiFCFS has no same-instant tie
		// rule (it orders by pulse sequence), so only compare histories
		// with strictly increasing arrival times.
		var filtered []op
		lastT := -1.0
		for _, o := range ops {
			if o.arrive && o.time == lastT {
				continue
			}
			filtered = append(filtered, o)
			lastT = o.time
		}
		g2 := replay(t, NewFCFS2(n), filtered)
		gm := replayMulti(t, NewMultiFCFS(n, 1), filtered)
		if !equalInts(g2, gm) {
			t.Fatalf("trial %d: FCFS2 %v != MultiFCFS(r=1) %v", trial, g2, gm)
		}
	}
}

func replayMulti(t *testing.T, p *MultiFCFS, ops []op) []int {
	d := newMultiDriver(t, p)
	var grants []int
	for _, o := range ops {
		if o.arrive {
			if d.outs[o.id] > 0 {
				continue
			}
			d.request(o.id, o.time)
		} else {
			if len(d.waitingIDs()) == 0 {
				continue
			}
			grants = append(grants, d.arbitrate())
		}
	}
	return grants
}

// Keep sort imported for waitingIDs-style helpers if needed later.
var _ = sort.Ints
