package core

import (
	"testing"

	"busarb/internal/central"
	"busarb/internal/rng"
)

func TestFCFS1ArrivalOrderAcrossArbitrations(t *testing.T) {
	// Requests separated by at least one arbitration are served in
	// arrival order, regardless of static identity.
	p := NewFCFS1(8)
	d := newDriver(t, p)
	d.requestAt(2, 1.0)
	d.requestAt(7, 2.0)
	// An arbitration happens between the arrivals of 7 and 5: agent 2
	// and 7 compete, 7 loses... no: first arbitration serves by counter
	// then id. Both have counter 0, so 7 wins the first arbitration.
	if w := d.arbitrate(); w != 7 {
		t.Fatalf("grant = %d (counters tied, higher id wins), want 7", w)
	}
	// Agent 2 lost once: counter 1. A new request from 5 has counter 0.
	d.requestAt(5, 3.0)
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2 (older request wins on counter)", w)
	}
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5", w)
	}
}

func TestFCFS1TieBreaksByStaticID(t *testing.T) {
	// Requests in the same inter-arbitration interval share a counter
	// value and are served in static-identity order (§3.2) — the
	// protocol's residual unfairness, measured in Table 4.1.
	p := NewFCFS1(8)
	d := newDriver(t, p)
	d.requestAt(3, 1.0)
	d.requestAt(6, 1.5)
	d.requestAt(1, 1.7)
	if w := d.arbitrate(); w != 6 {
		t.Fatalf("grant = %d, want 6", w)
	}
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3 (both waited 1 arbitration; 3 > 1)", w)
	}
	if w := d.arbitrate(); w != 1 {
		t.Fatalf("grant = %d, want 1", w)
	}
}

func TestFCFS1CounterLifecycle(t *testing.T) {
	p := NewFCFS1(4)
	p.OnRequest(1, 0)
	p.OnRequest(2, 0)
	p.Arbitrate([]int{1, 2}) // 2 wins, 1 increments
	if p.Counter(1) != 1 {
		t.Errorf("loser counter = %d, want 1", p.Counter(1))
	}
	if p.Counter(2) != 0 {
		t.Errorf("winner counter = %d, want 0 (reset on win)", p.Counter(2))
	}
}

func TestFCFS1CounterSaturates(t *testing.T) {
	// With 1 counter bit, the counter saturates at 1 rather than
	// wrapping (wrapping would invert service order).
	p := NewFCFS1Bits(4, 1)
	p.OnRequest(1, 0)
	p.OnRequest(2, 0)
	p.OnRequest(3, 0)
	p.Arbitrate([]int{1, 2, 3}) // 3 wins; 1,2 -> ctr 1
	p.OnRequest(3, 1)
	p.Arbitrate([]int{1, 2, 3}) // 2 wins (ctr 1, id 2 beats id 1); 1 saturates
	if p.Counter(1) != 1 {
		t.Errorf("counter = %d, want saturated 1", p.Counter(1))
	}
	if p.Name() != "FCFS1/1b" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestFCFS1BitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 counter bits did not panic")
		}
	}()
	NewFCFS1Bits(4, 0)
}

func TestFCFS2ExactArrivalOrder(t *testing.T) {
	// FCFS2 serves strictly in arrival order even when arrivals fall
	// between arbitrations — the case FCFS1 gets wrong.
	p := NewFCFS2(8)
	d := newDriver(t, p)
	d.requestAt(2, 1.0)
	d.requestAt(7, 2.0) // no arbitration between: FCFS1 would serve 7 first
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2 (strict arrival order)", w)
	}
	if w := d.arbitrate(); w != 7 {
		t.Fatalf("grant = %d, want 7", w)
	}
}

func TestFCFS2SimultaneousArrivalsTieByID(t *testing.T) {
	p := NewFCFS2(8)
	d := newDriver(t, p)
	d.requestAt(3, 1.0)
	d.requestAt(5, 1.0) // identical instant: same counting interval
	d.requestAt(1, 2.0)
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5 (tie broken by higher id)", w)
	}
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3", w)
	}
	if w := d.arbitrate(); w != 1 {
		t.Fatalf("grant = %d, want 1", w)
	}
}

func TestFCFS2CounterValues(t *testing.T) {
	p := NewFCFS2(8)
	p.OnRequest(4, 1.0)
	p.OnRequest(6, 2.0)
	p.OnRequest(2, 2.0) // same instant as 6
	p.OnRequest(8, 3.0)
	if p.Counter(4) != 3 {
		t.Errorf("counter(4) = %d, want 3 (three later arrivals)", p.Counter(4))
	}
	if p.Counter(6) != 1 || p.Counter(2) != 1 {
		t.Errorf("counters(6,2) = %d,%d, want 1,1 (shared interval, one later pulse)",
			p.Counter(6), p.Counter(2))
	}
	if p.Counter(8) != 0 {
		t.Errorf("counter(8) = %d, want 0", p.Counter(8))
	}
}

// FCFS2 must match the central FCFS queue on arbitrary histories.
func TestFCFS2MatchesCentralQueue(t *testing.T) {
	src := rng.New(303)
	for trial := 0; trial < 200; trial++ {
		n := 2 + src.Intn(20)
		ops := randomHistory(src, n, 120)
		grants := replay(t, NewFCFS2(n), ops)

		var q central.FCFSQueue
		waiting := map[int]bool{}
		var want []int
		for _, o := range ops {
			if o.arrive {
				if waiting[o.id] {
					continue
				}
				waiting[o.id] = true
				q.Enqueue(o.id, o.time)
			} else {
				if q.Len() == 0 {
					continue
				}
				w := q.Grant()
				delete(waiting, w)
				want = append(want, w)
			}
		}
		if !equalInts(grants, want) {
			t.Fatalf("trial %d (n=%d): FCFS2 %v != central queue %v", trial, n, grants, want)
		}
	}
}

// FCFS1's deviation from true FCFS is bounded: it never serves a request
// R2 before R1 when R1 arrived earlier AND at least one arbitration
// separated their arrivals (then R1's counter strictly exceeds R2's).
func TestFCFS1BoundedReordering(t *testing.T) {
	src := rng.New(404)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(16)
		p := NewFCFS1(n)
		d := newDriver(t, p)
		type reqInfo struct {
			time     float64
			arbsSeen int
		}
		arbs := 0
		pendingInfo := map[int]reqInfo{}
		ops := randomHistory(src, n, 150)
		var served []reqInfo
		for _, o := range ops {
			if o.arrive {
				if d.waiting[o.id] {
					continue
				}
				d.requestAt(o.id, o.time)
				pendingInfo[o.id] = reqInfo{time: o.time, arbsSeen: arbs}
			} else {
				if len(d.waiting) == 0 {
					continue
				}
				w := d.arbitrate()
				arbs++
				served = append(served, pendingInfo[w])
				delete(pendingInfo, w)
			}
		}
		for i := 0; i < len(served); i++ {
			for j := i + 1; j < len(served); j++ {
				// served[j] was granted after served[i]; violation if
				// served[j] arrived earlier and an arbitration separated
				// the arrivals.
				if served[j].time < served[i].time && served[j].arbsSeen < served[i].arbsSeen {
					t.Fatalf("trial %d: request arriving at %v (before arb %d) served after request at %v (after arb %d)",
						trial, served[j].time, served[j].arbsSeen, served[i].time, served[i].arbsSeen)
				}
			}
		}
	}
}

func TestHybridFCFSAcrossIntervalsRRWithin(t *testing.T) {
	p := NewHybrid(8)
	d := newDriver(t, p)
	// Distinct arrival instants: strict FCFS, like FCFS2.
	d.requestAt(2, 1.0)
	d.requestAt(7, 2.0)
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2 (FCFS across intervals)", w)
	}
	if w := d.arbitrate(); w != 7 {
		t.Fatalf("grant = %d, want 7", w)
	}
	// Simultaneous arrivals: round-robin order within the interval.
	// lastWinner is 7, so the RR scan favors ids below 7.
	d.requestAt(3, 5.0)
	d.requestAt(5, 5.0)
	d.requestAt(8, 5.0)
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5 (RR: highest id below last winner 7)", w)
	}
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3 (RR scan continues downward)", w)
	}
	if w := d.arbitrate(); w != 8 {
		t.Fatalf("grant = %d, want 8 (RR wraps to top)", w)
	}
}

func TestHybridReset(t *testing.T) {
	p := NewHybrid(4)
	p.OnRequest(1, 0)
	p.OnRequest(2, 1)
	p.Arbitrate([]int{1, 2})
	p.Reset()
	p.OnRequest(3, 0)
	if out := p.Arbitrate([]int{3}); out.Winner != 3 {
		t.Errorf("after reset, winner = %d", out.Winner)
	}
}

func TestFCFSNames(t *testing.T) {
	if NewFCFS1(8).Name() != "FCFS1" || NewFCFS2(8).Name() != "FCFS2" || NewHybrid(8).Name() != "Hybrid" {
		t.Error("names wrong")
	}
}

func TestFCFS2Reset(t *testing.T) {
	p := NewFCFS2(4)
	p.OnRequest(1, 1.0)
	p.OnRequest(2, 2.0)
	p.Reset()
	if p.Counter(1) != 0 || p.Counter(2) != 0 {
		t.Error("Reset left counters")
	}
	// After reset, a fresh pair of simultaneous requests still ties.
	p.OnRequest(1, 2.0) // same time as pre-reset pulse: must not leak
	p.OnRequest(3, 2.0)
	if p.Counter(1) != 0 || p.Counter(3) != 0 {
		t.Errorf("counters after reset = %d,%d, want 0,0", p.Counter(1), p.Counter(3))
	}
}
