// Package core implements the paper's primary contribution — the
// distributed round-robin (RR) and first-come first-serve (FCFS) bus
// arbitration protocols of Vernon & Manber (ISCA 1988, §3) — together
// with the protocols they are compared against: the fixed-priority
// parallel contention arbiter and the two "assured access" fairness
// protocols of the 1980s bus standards (§2.2).
//
// All protocols are expressed against one abstraction: at each
// arbitration, every competing agent applies a composite arbitration
// number (package ident) and the bus's maximum-finding mechanism
// (package contention) selects the largest. A protocol is therefore just
// (a) a rule for which waiting agents compete, and (b) a rule for the
// dynamic fields of each competitor's arbitration number.
//
// Agent identities are 1..N (identity 0 is reserved, §2.1).
package core

import (
	"fmt"

	"busarb/internal/ident"
)

// Outcome is the result of one arbitration pass.
type Outcome struct {
	// Winner is the identity of the agent granted the bus, or 0 if the
	// pass selected no one.
	Winner int
	// Repass reports that the arbitration was empty and must be run
	// again immediately (RR3's "winning identity of zero" case, §3.1).
	// The caller charges a second arbitration delay for it.
	Repass bool
}

// Protocol is the scheduling logic layered over the parallel contention
// arbiter. Implementations are single-threaded by design: the simulator
// owns one instance per bus.
//
// The simulator calls OnRequest when an agent asserts the shared bus
// request line, Arbitrate with the identities of all agents with
// outstanding requests (ascending order) when an arbitration resolves,
// and OnServiceStart when the winner assumes bus mastership.
type Protocol interface {
	// Name returns the protocol's short name ("RR1", "FCFS2", ...).
	Name() string
	// N returns the number of agents the instance was built for.
	N() int
	// OnRequest records that agent id generated a request at time now.
	OnRequest(id int, now float64)
	// OnServiceStart records that agent id became bus master at now.
	OnServiceStart(id int, now float64)
	// Arbitrate selects the next bus master among the waiting agents.
	// waiting is never empty and is sorted ascending.
	Arbitrate(waiting []int) Outcome
	// Reset restores initial state.
	Reset()
}

// Factory builds a protocol instance for an n-agent bus.
type Factory func(n int) Protocol

// validateWaiting panics on malformed input; protocols are internal and
// the simulator must uphold the contract.
func validateWaiting(n int, waiting []int) {
	if len(waiting) == 0 {
		panic("core: Arbitrate with no waiting agents")
	}
	prev := 0
	for _, id := range waiting {
		if id <= prev || id > n {
			panic(fmt.Sprintf("core: bad waiting set %v for n=%d", waiting, n))
		}
		prev = id
	}
}

// pickMax runs the (abstract) maximum-finding arbitration over encoded
// numbers and returns the index of the winner. It stands in for a
// settled parallel contention arbitration; package contention verifies
// that the wired-OR settle process computes exactly this maximum.
func pickMax(nums []uint64) int {
	_, idx := ident.Max(nums)
	return idx
}

// scratch holds per-instance arbitration work buffers, embedded in every
// protocol so Arbitrate is allocation free in steady state. The buffers
// carry no state between calls — they model the (stateless) arbitration
// lines, not registers — so verifier clones may safely share them.
type scratch struct {
	nums  []uint64
	comps []int
}

// numsBuf returns a length-n scratch slice for arbitration numbers.
func (s *scratch) numsBuf(n int) []uint64 {
	if cap(s.nums) < n {
		s.nums = make([]uint64, n)
	}
	return s.nums[:n]
}

// compsBuf returns an empty scratch slice for competitor identities;
// callers append to it and pass the result back via keepComps so growth
// is retained.
func (s *scratch) compsBuf() []int { return s.comps[:0] }

// keepComps stores the (possibly regrown) competitor buffer for reuse.
func (s *scratch) keepComps(c []int) { s.comps = c }

// ---------------------------------------------------------------------
// Fixed priority (the raw parallel contention arbiter, §2.1).

// FixedPriority grants the bus to the highest static identity among the
// competitors. It is maximally unfair under load and exists as the
// baseline the assured access protocols (and the paper's protocols) fix.
type FixedPriority struct {
	n      int
	layout ident.Layout
	scratch
}

// NewFixedPriority returns a fixed-priority protocol for n agents.
func NewFixedPriority(n int) *FixedPriority {
	return &FixedPriority{n: n, layout: ident.LayoutFor(n)}
}

// Name implements Protocol.
func (p *FixedPriority) Name() string { return "FP" }

// N implements Protocol.
func (p *FixedPriority) N() int { return p.n }

// OnRequest implements Protocol.
func (p *FixedPriority) OnRequest(int, float64) {}

// OnServiceStart implements Protocol.
func (p *FixedPriority) OnServiceStart(int, float64) {}

// Arbitrate implements Protocol. The composite number is the static
// identity alone, so the settled maximum is the largest waiting
// identity — the tail of the (sorted ascending) waiting list. No
// encode pass is needed; this is the kernel specialization of the
// contention maximum for the fixed-priority layout.
func (p *FixedPriority) Arbitrate(waiting []int) Outcome {
	validateWaiting(p.n, waiting)
	return Outcome{Winner: waiting[len(waiting)-1]}
}

// Reset implements Protocol.
func (p *FixedPriority) Reset() {}
