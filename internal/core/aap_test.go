package core

import (
	"testing"

	"busarb/internal/rng"
)

func TestAAP1BatchFormation(t *testing.T) {
	p := NewAAP1(8)
	d := newDriver(t, p)
	// Requests to an idle bus form a batch.
	d.requestAt(3, 1.0)
	if !p.InBatch(3) {
		t.Fatal("first request should open a batch")
	}
	// A request while the batch is in progress waits for batch end.
	d.requestAt(5, 2.0)
	if p.InBatch(5) {
		t.Fatal("mid-batch request must not join the batch (AAP1)")
	}
	// 3 is served; it was the last batch member, so 5's batch forms.
	if w := d.arbitrate(); w != 3 {
		t.Fatalf("grant = %d, want 3", w)
	}
	if !p.InBatch(5) {
		t.Fatal("pending request should form the next batch")
	}
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5", w)
	}
}

func TestAAP1WithinBatchDescendingID(t *testing.T) {
	p := NewAAP1(8)
	d := newDriver(t, p)
	d.requestAt(2, 0.0)
	// 2 opened the batch; 6 and 4 arrive mid-batch and must wait.
	d.requestAt(6, 0.1)
	d.requestAt(4, 0.2)
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2 (only batch member)", w)
	}
	// New batch {6,4}: served in descending identity order.
	if w := d.arbitrate(); w != 6 {
		t.Fatalf("grant = %d, want 6", w)
	}
	if w := d.arbitrate(); w != 4 {
		t.Fatalf("grant = %d, want 4", w)
	}
}

func TestAAP1LowIDServedLast(t *testing.T) {
	// The §2.3 unfairness mechanism: within every batch the low-identity
	// agent is served after all higher ones.
	p := NewAAP1(8)
	d := newDriver(t, p)
	for _, id := range []int{1, 5, 8, 3} {
		d.requestAt(id, 0) // simultaneous: all join the batch? No — only
		// the first opens it; the rest arrive while it is in progress.
	}
	// 1 opened the batch alone; 5, 8, 3 are pending.
	if w := d.arbitrate(); w != 1 {
		t.Fatalf("grant = %d, want 1", w)
	}
	order := []int{d.arbitrate(), d.arbitrate(), d.arbitrate()}
	if !equalInts(order, []int{8, 5, 3}) {
		t.Fatalf("batch order = %v, want [8 5 3]", order)
	}
}

func TestAAP1NoAgentServedTwicePerBatch(t *testing.T) {
	src := rng.New(505)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(16)
		p := NewAAP1(n)
		d := newDriver(t, p)
		ops := randomHistory(src, n, 150)
		servedInBatch := map[int]bool{}
		gen := p.BatchGen()
		for _, o := range ops {
			if o.arrive {
				if d.waiting[o.id] {
					continue
				}
				d.requestAt(o.id, o.time)
			} else {
				if len(d.waiting) == 0 {
					continue
				}
				if g := p.BatchGen(); g != gen {
					gen = g
					servedInBatch = map[int]bool{}
				}
				w := d.arbitrate()
				if servedInBatch[w] {
					t.Fatalf("trial %d: agent %d served twice in one batch", trial, w)
				}
				servedInBatch[w] = true
			}
		}
	}
}

func TestAAP2InhibitionAndRelease(t *testing.T) {
	p := NewAAP2(8)
	d := newDriver(t, p)
	d.requestAt(7, 0)
	d.requestAt(4, 0)
	if w := d.arbitrate(); w != 7 {
		t.Fatalf("grant = %d, want 7", w)
	}
	if !p.Inhibited(7) {
		t.Fatal("served agent must be inhibited")
	}
	// 7 requests again immediately; it must not beat the uninhibited 4.
	d.requestAt(7, 1)
	if w := d.arbitrate(); w != 4 {
		t.Fatalf("grant = %d, want 4 (7 is inhibited)", w)
	}
	// Now only the inhibited 7 waits: fairness release, then 7 wins.
	if w := d.arbitrate(); w != 7 {
		t.Fatalf("grant = %d, want 7 after fairness release", w)
	}
	if p.Inhibited(4) {
		t.Fatal("fairness release must clear all inhibit flags")
	}
}

func TestAAP2MidBatchJoin(t *testing.T) {
	// Unlike AAP1, an agent that has not been served in the current
	// batch may join it mid-stream.
	p := NewAAP2(8)
	d := newDriver(t, p)
	d.requestAt(6, 0)
	d.requestAt(2, 0)
	if w := d.arbitrate(); w != 6 {
		t.Fatalf("grant = %d, want 6", w)
	}
	// 5 arrives mid-batch, not yet served: it competes right away and
	// beats 2 on identity.
	d.requestAt(5, 1)
	if w := d.arbitrate(); w != 5 {
		t.Fatalf("grant = %d, want 5 (mid-batch join allowed in AAP2)", w)
	}
	if w := d.arbitrate(); w != 2 {
		t.Fatalf("grant = %d, want 2", w)
	}
}

func TestAAP2NoAgentServedTwicePerBatch(t *testing.T) {
	// Between two fairness releases, no agent is served twice.
	src := rng.New(606)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.Intn(16)
		p := NewAAP2(n)
		d := newDriver(t, p)
		ops := randomHistory(src, n, 150)
		servedInBatch := map[int]bool{}
		gen := p.ReleaseGen()
		for _, o := range ops {
			if o.arrive {
				if d.waiting[o.id] {
					continue
				}
				d.requestAt(o.id, o.time)
			} else {
				if len(d.waiting) == 0 {
					continue
				}
				// A fairness release (tracked by the generation counter)
				// starts a new batch.
				if g := p.ReleaseGen(); g != gen {
					gen = g
					servedInBatch = map[int]bool{}
				}
				w := d.arbitrate()
				if servedInBatch[w] {
					t.Fatalf("trial %d: agent %d served twice in one AAP2 batch", trial, w)
				}
				servedInBatch[w] = true
			}
		}
	}
}

func saturatedCounts(t *testing.T, p Protocol, n, rounds int) []int {
	d := newDriver(t, p)
	for id := 1; id <= n; id++ {
		d.requestAt(id, 0)
	}
	counts := make([]int, n+1)
	now := 1.0
	for i := 0; i < rounds*n; i++ {
		w := d.arbitrate()
		counts[w]++
		now++
		d.requestAt(w, now) // saturated: immediate re-request
	}
	return counts
}

func TestAAP1UnfairUnderSaturation(t *testing.T) {
	// The §2.3 unfairness the paper sets out to fix: a batch's
	// lowest-identity member is served last, so its re-request misses
	// the next batch. At saturation the most favored agent receives up
	// to twice ("as high as 100%", [VeLe88]) the bandwidth of the least
	// favored — the AAP column of Table 4.1(b) approaches 2.0.
	const n = 8
	counts := saturatedCounts(t, NewAAP1(n), n, 40)
	lo, hi := counts[1], counts[1]
	for id := 2; id <= n; id++ {
		if counts[id] < lo {
			lo = counts[id]
		}
		if counts[id] > hi {
			hi = counts[id]
		}
	}
	ratio := float64(hi) / float64(lo)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("AAP1 saturation unfairness ratio = %.2f (counts %v), want ~2.0", ratio, counts[1:])
	}
}

func TestAAP2NearFairUnderSaturation(t *testing.T) {
	// AAP2's mid-batch join keeps saturated batches complete: every
	// agent is served once per fairness-release cycle.
	const n = 8
	counts := saturatedCounts(t, NewAAP2(n), n, 20)
	for id := 1; id <= n; id++ {
		if counts[id] < 18 || counts[id] > 22 {
			t.Errorf("AAP2: agent %d served %d/160, want ~20", id, counts[id])
		}
	}
}

func TestAAPReset(t *testing.T) {
	p1 := NewAAP1(4)
	p1.OnRequest(1, 0)
	p1.OnRequest(2, 0)
	p1.Reset()
	if p1.InBatch(1) || p1.InBatch(2) {
		t.Error("AAP1 Reset left batch state")
	}
	p2 := NewAAP2(4)
	p2.OnServiceStart(3, 0)
	p2.Reset()
	if p2.Inhibited(3) {
		t.Error("AAP2 Reset left inhibit state")
	}
}

func TestAAPNames(t *testing.T) {
	if NewAAP1(4).Name() != "AAP1" || NewAAP2(4).Name() != "AAP2" {
		t.Error("names wrong")
	}
	if NewAAP1(4).N() != 4 || NewAAP2(4).N() != 4 {
		t.Error("N wrong")
	}
}
