package core

// State-copy support used by the exhaustive verifier (internal/verify):
// each protocol can duplicate its register state so the explorer can
// branch without replaying histories. These are verification hooks, not
// part of the scheduling semantics.

// SetLastWinner overwrites the winner register (verification hook).
func (p *RR1) SetLastWinner(w int) { p.lastWinner = w }

// SetLastWinner overwrites the winner register (verification hook).
func (p *RR2) SetLastWinner(w int) { p.lastWinner = w }

// SetLastWinner overwrites the winner register (verification hook).
func (p *RR3) SetLastWinner(w int) { p.lastWinner = w }

// Clone returns a deep copy (verification hook).
func (p *FCFS1) Clone() *FCFS1 {
	c := *p
	c.ctr = p.ctr.Clone()
	c.arbVec = p.arbVec.Clone()
	return &c
}

// Clone returns a deep copy (verification hook).
func (p *FCFS2) Clone() *FCFS2 {
	c := *p
	c.ctr = p.ctr.Clone()
	c.wait = p.wait.Clone()
	c.arbVec = p.arbVec.Clone()
	return &c
}

// Clone returns a deep copy (verification hook).
func (p *AAP1) Clone() *AAP1 {
	c := *p
	c.inBatch = append([]bool(nil), p.inBatch...)
	c.pending = append([]bool(nil), p.pending...)
	return &c
}

// Clone returns a deep copy (verification hook).
func (p *AAP2) Clone() *AAP2 {
	c := *p
	c.inhibited = append([]bool(nil), p.inhibited...)
	c.waiting = append([]bool(nil), p.waiting...)
	return &c
}

// Clone returns a deep copy (verification hook).
func (p *RotatingRR) Clone() *RotatingRR {
	c := *p
	c.base = append([]int(nil), p.base...)
	return &c
}
