package core

import (
	"sort"
	"testing"

	"busarb/internal/rng"
)

// driver replays an arrival/arbitration history through a protocol,
// tracking the waiting set the simulator would maintain.
type driver struct {
	t       *testing.T
	p       Protocol
	waiting map[int]bool
	now     float64
}

func newDriver(t *testing.T, p Protocol) *driver {
	return &driver{t: t, p: p, waiting: make(map[int]bool)}
}

func (d *driver) request(id int) {
	if d.waiting[id] {
		d.t.Fatalf("%s: agent %d requested twice", d.p.Name(), id)
	}
	d.waiting[id] = true
	d.p.OnRequest(id, d.now)
}

func (d *driver) requestAt(id int, t float64) {
	d.now = t
	d.request(id)
}

func (d *driver) waitingIDs() []int {
	ids := make([]int, 0, len(d.waiting))
	for id := range d.waiting {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// arbitrate runs arbitrations (following repasses) until a winner is
// granted, then starts its service. Returns the winner.
func (d *driver) arbitrate() int {
	if len(d.waiting) == 0 {
		d.t.Fatalf("%s: arbitrate with empty waiting set", d.p.Name())
	}
	for pass := 0; ; pass++ {
		if pass > 2 {
			d.t.Fatalf("%s: more than 2 arbitration passes", d.p.Name())
		}
		out := d.p.Arbitrate(d.waitingIDs())
		if out.Repass {
			continue
		}
		if !d.waiting[out.Winner] {
			d.t.Fatalf("%s: winner %d is not waiting", d.p.Name(), out.Winner)
		}
		delete(d.waiting, out.Winner)
		d.p.OnServiceStart(out.Winner, d.now)
		return out.Winner
	}
}

// op is one step of a random history: either an arrival or a grant.
type op struct {
	arrive bool
	id     int
	time   float64
}

// randomHistory builds an interleaving of arrivals and grant attempts
// for n agents with non-decreasing times. Arrivals may name an agent
// that is already waiting and grants may hit an empty bus; the replayer
// skips those, so every protocol replaying the same history sees the
// same effective event sequence (as long as its grants match).
func randomHistory(src *rng.Source, n, steps int) []op {
	var ops []op
	now := 0.0
	for i := 0; i < steps; i++ {
		now += 0.25 + src.Float64()
		if src.Intn(5) < 3 {
			ops = append(ops, op{arrive: true, id: 1 + src.Intn(n), time: now})
			// Occasionally a simultaneous arrival (identical timestamp),
			// exercising the protocols' tie handling.
			if src.Intn(8) == 0 {
				ops = append(ops, op{arrive: true, id: 1 + src.Intn(n), time: now})
			}
		} else {
			ops = append(ops, op{arrive: false, time: now})
		}
	}
	// Drain whatever is left waiting.
	for i := 0; i < n; i++ {
		now++
		ops = append(ops, op{arrive: false, time: now})
	}
	return ops
}

// replay drives a protocol through a history and returns the grant
// sequence. Since grants free agents for re-request, the history's
// arrivals cycle through agents; the replayer reconciles by skipping
// arrivals for still-waiting agents (both protocols see the identical
// effective history).
func replay(t *testing.T, p Protocol, ops []op) []int {
	d := newDriver(t, p)
	var grants []int
	for _, o := range ops {
		if o.arrive {
			if d.waiting[o.id] {
				continue
			}
			d.requestAt(o.id, o.time)
		} else {
			d.now = o.time
			if len(d.waiting) == 0 {
				continue
			}
			grants = append(grants, d.arbitrate())
		}
	}
	return grants
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
