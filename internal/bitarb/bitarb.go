// Package bitarb is the word-wide arbitration kernel: request lines and
// arbitration numbers represented as []uint64 words, with one parallel
// contention pass (the maximum-finding arbitration of §2.1) resolved in
// O(words) branch-free word operations per bit-plane instead of the
// O(N·width) per-agent boolean scans of the settle model.
//
// The kernel is the software form of the classic hardware round-robin
// arbiter construction: a thermometer mask splits the request vector
// into a high-priority and a low-priority segment (req & thermo and
// req & ^thermo), each segment is reduced with plain word arithmetic,
// and the two results are combined — exactly the structure of
// high-speed parallel RR arbiters. Three layers are provided:
//
//   - Vec: a bitmap over agent identities with word-wise maximum-finding
//     (Max, MaxBelow). MaxBelow(limit) is the thermometer-mask segment
//     split: the highest set bit strictly below limit, i.e. the winner
//     of the high-priority segment of a round-robin scan.
//   - Planes: arbitration numbers stored as bit-planes (one Vec-shaped
//     word row per number bit). Resolve runs one contention pass — the
//     MSB-first tournament the wired-OR lines settle to — as width
//     masked AND-reductions over the candidate words.
//   - Counters: the FCFS waiting-time counters (§3.2) as bit-planes
//     with a word-parallel saturating ripple-carry increment, so
//     "every waiting agent increments" costs O(bits·words) instead of
//     O(N).
//
// Identities are 1..n (identity 0 is reserved to mean "no competitor",
// §2.1); bit i of the word row carries agent i, so bit 0 is never set.
// All operations are allocation-free after construction; the packages
// riding on the kernel (contention, core, grant) keep the boolean
// wired-OR settle as the oracle and pin bit-identical winner sequences
// against it.
package bitarb

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// wordsFor returns the number of uint64 words needed to hold bit
// indices 0..n.
func wordsFor(n int) int { return n/wordBits + 1 }

// Vec is a bitmap over agent identities 1..n: the request lines of one
// arbitration, one bit per agent, packed into uint64 words.
type Vec struct {
	n int
	w []uint64
}

// NewVec returns an empty bitmap for identities 1..n.
//
//arblint:alloc constructor: one bitmap per arbiter, at setup
func NewVec(n int) *Vec {
	if n < 1 {
		panic(fmt.Sprintf("bitarb: Vec needs at least 1 identity, got %d", n))
	}
	return &Vec{n: n, w: make([]uint64, wordsFor(n))}
}

// N returns the highest identity the bitmap can hold.
func (v *Vec) N() int { return v.n }

// Set asserts identity i's bit.
func (v *Vec) Set(i int) {
	v.check(i)
	v.w[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear releases identity i's bit.
func (v *Vec) Clear(i int) {
	v.check(i)
	v.w[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether identity i's bit is set.
func (v *Vec) Test(i int) bool {
	v.check(i)
	return v.w[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (v *Vec) check(i int) {
	if i < 1 || i > v.n {
		panic(fmt.Sprintf("bitarb: identity %d out of range 1..%d", i, v.n))
	}
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.w {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v *Vec) Count() int {
	c := 0
	for _, w := range v.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (v *Vec) Reset() {
	for i := range v.w {
		v.w[i] = 0
	}
}

// CopyFrom makes v a copy of o (same n required).
func (v *Vec) CopyFrom(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitarb: CopyFrom size mismatch: %d != %d", v.n, o.n))
	}
	copy(v.w, o.w)
}

// Clone returns a deep copy.
func (v *Vec) Clone() *Vec {
	c := NewVec(v.n)
	copy(c.w, v.w)
	return c
}

// Words exposes the backing words (bit i of word i/64 is identity i).
// Callers must not change the length.
func (v *Vec) Words() []uint64 { return v.w }

// Max returns the highest set identity — the fixed-priority contention
// winner — or -1 if the bitmap is empty. O(words).
func (v *Vec) Max() int { return v.MaxBelow(v.n + 1) }

// MaxBelow returns the highest set identity strictly below limit, or -1
// if there is none. This is the thermometer-mask segment split of the
// round-robin kernel: with limit = lastWinner it resolves the
// high-priority segment (identities the RR scan visits first, §3.1)
// without materializing the mask. limit may exceed n. O(words).
func (v *Vec) MaxBelow(limit int) int {
	if limit > v.n+1 {
		limit = v.n + 1
	}
	if limit <= 1 {
		return -1
	}
	top := limit - 1 // highest admissible identity
	wi := top / wordBits
	// Thermometer mask for the top word: bits 0..top%64.
	w := v.w[wi] & (^uint64(0) >> uint(wordBits-1-top%wordBits))
	for {
		if w != 0 {
			return wi*wordBits + bits.Len64(w) - 1
		}
		wi--
		if wi < 0 {
			return -1
		}
		w = v.w[wi]
	}
}

// Planes stores one arbitration number per identity as bit-planes:
// plane b holds, for every identity, bit b of its number. A contention
// pass over a request bitmap is then a tournament from the most
// significant plane down — the direct word-parallel analogue of the
// wired-OR lines settling to the maximum competing number (§2.1).
type Planes struct {
	n     int
	width int
	plane [][]uint64
	cand  []uint64 // tournament scratch
}

// NewPlanes returns a zeroed plane set for identities 1..n and numbers
// of the given bit width (1..64).
//
//arblint:alloc constructor: one plane set per arbiter, at setup
func NewPlanes(width, n int) *Planes {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("bitarb: plane width %d out of range 1..64", width))
	}
	if n < 1 {
		panic(fmt.Sprintf("bitarb: Planes need at least 1 identity, got %d", n))
	}
	p := &Planes{n: n, width: width, cand: make([]uint64, wordsFor(n))}
	p.plane = make([][]uint64, width)
	for b := range p.plane {
		p.plane[b] = make([]uint64, wordsFor(n))
	}
	return p
}

// Width returns the number bit width.
func (p *Planes) Width() int { return p.width }

// Store writes identity i's arbitration number into the planes,
// replacing any previous value. The number must fit the plane width.
func (p *Planes) Store(i int, number uint64) {
	if i < 1 || i > p.n {
		panic(fmt.Sprintf("bitarb: identity %d out of range 1..%d", i, p.n))
	}
	if number>>uint(p.width) != 0 { // width == 64 shifts to 0: nothing exceeds
		panic(fmt.Sprintf("bitarb: number %b exceeds %d planes", number, p.width))
	}
	wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
	for b := 0; b < p.width; b++ {
		if number&(1<<uint(b)) != 0 {
			p.plane[b][wi] |= bit
		} else {
			p.plane[b][wi] &^= bit
		}
	}
}

// Load returns identity i's stored number.
func (p *Planes) Load(i int) uint64 {
	wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
	var v uint64
	for b := 0; b < p.width; b++ {
		if p.plane[b][wi]&bit != 0 {
			v |= 1 << uint(b)
		}
	}
	return v
}

// Resolve runs one contention pass among the identities in req: the
// winner is the identity applying the maximum stored number, ties
// broken toward the higher identity (impossible on a real bus, where
// numbers embed distinct static identities). It returns the winner and
// the winning number, or (-1, 0) if req is empty — the idle bus, whose
// winning identity of zero means no agent participated (§3.1).
//
// Cost is O(width · words): per plane, one masked AND-reduction over
// the candidate words — the branch-free segment arithmetic of the
// parallel RR arbiter generalized to multi-bit numbers.
func (p *Planes) Resolve(req *Vec) (winner int, number uint64) {
	if req.n != p.n {
		panic(fmt.Sprintf("bitarb: Resolve size mismatch: %d != %d", req.n, p.n))
	}
	cand := p.cand
	copy(cand, req.w)
	var win uint64
	for b := p.width - 1; b >= 0; b-- {
		// Candidates applying 1 on this plane knock out the rest —
		// exactly an arbitration line reading 1 (§2.1).
		row := p.plane[b]
		var any uint64
		for wi, c := range cand {
			any |= c & row[wi]
		}
		if any != 0 {
			win |= 1 << uint(b)
			for wi := range cand {
				cand[wi] &= row[wi]
			}
		}
	}
	top := -1
	for wi := len(cand) - 1; wi >= 0; wi-- {
		if cand[wi] != 0 {
			top = wi*wordBits + bits.Len64(cand[wi]) - 1
			break
		}
	}
	if top < 0 {
		return -1, 0
	}
	return top, win
}

// Counters holds one saturating counter per identity as bit-planes:
// the FCFS waiting-time counters of §3.2, maintained word-parallel.
type Counters struct {
	n     int
	cbits int
	plane [][]uint64
	cand  []uint64 // tournament scratch
	carry []uint64 // increment scratch
}

// NewCounters returns zeroed counters of the given bit width (1..63)
// for identities 1..n.
//
//arblint:alloc constructor: one counter bank per arbiter, at setup
func NewCounters(cbits, n int) *Counters {
	if cbits < 1 || cbits > 63 {
		panic(fmt.Sprintf("bitarb: counter width %d out of range 1..63", cbits))
	}
	if n < 1 {
		panic(fmt.Sprintf("bitarb: Counters need at least 1 identity, got %d", n))
	}
	c := &Counters{
		n:     n,
		cbits: cbits,
		cand:  make([]uint64, wordsFor(n)),
		carry: make([]uint64, wordsFor(n)),
	}
	c.plane = make([][]uint64, cbits)
	for b := range c.plane {
		c.plane[b] = make([]uint64, wordsFor(n))
	}
	return c
}

// Bits returns the counter width.
func (c *Counters) Bits() int { return c.cbits }

// Max returns the largest representable count, 2^bits-1, at which the
// counters saturate (§3.2's bounded counter; a wrap would invert the
// service order).
func (c *Counters) Max() int { return 1<<uint(c.cbits) - 1 }

// Get returns identity i's counter value.
func (c *Counters) Get(i int) int {
	if i < 1 || i > c.n {
		panic(fmt.Sprintf("bitarb: identity %d out of range 1..%d", i, c.n))
	}
	wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
	v := 0
	for b := 0; b < c.cbits; b++ {
		if c.plane[b][wi]&bit != 0 {
			v |= 1 << uint(b)
		}
	}
	return v
}

// Zero clears identity i's counter (a new request, or a win).
func (c *Counters) Zero(i int) {
	if i < 1 || i > c.n {
		panic(fmt.Sprintf("bitarb: identity %d out of range 1..%d", i, c.n))
	}
	wi, bit := i/wordBits, uint64(1)<<uint(i%wordBits)
	for b := 0; b < c.cbits; b++ {
		c.plane[b][wi] &^= bit
	}
}

// Reset clears every counter.
func (c *Counters) Reset() {
	for b := range c.plane {
		row := c.plane[b]
		for i := range row {
			row[i] = 0
		}
	}
}

// Inc increments the counter of every identity in mask, saturating at
// Max: the word-parallel form of "each waiting agent increments its
// counter" (§3.2), one ripple-carry add over the bit-planes. Cost is
// O(bits · words) regardless of how many agents increment.
func (c *Counters) Inc(mask *Vec) { c.incWords(mask.w) }

// IncExceptZero increments every identity in mask whose counter is
// currently nonzero (FCFS2's same-pulse rule: an agent that arrived in
// the sensing window does not count the coincident pulse, §3.2).
func (c *Counters) IncExceptZero(mask *Vec) {
	carry := c.carry
	// zero-counter identities: no plane carries their bit.
	for wi := range carry {
		var nz uint64
		for b := range c.plane {
			nz |= c.plane[b][wi]
		}
		carry[wi] = mask.w[wi] & nz
	}
	c.rippleAdd(carry)
}

func (c *Counters) incWords(mask []uint64) {
	carry := c.carry
	copy(carry, mask)
	c.rippleAdd(carry)
}

// rippleAdd adds 1 to every counter whose bit is set in carry,
// saturating at Max. carry is clobbered.
func (c *Counters) rippleAdd(carry []uint64) {
	// Saturated counters (all planes set) are excluded up front, so the
	// add cannot wrap them to zero.
	for wi, cw := range carry {
		if cw == 0 {
			continue
		}
		sat := ^uint64(0)
		for b := range c.plane {
			sat &= c.plane[b][wi]
		}
		carry[wi] = cw &^ sat
	}
	for b := 0; b < c.cbits; b++ {
		row := c.plane[b]
		done := true
		for wi, cw := range carry {
			if cw == 0 {
				continue
			}
			old := row[wi]
			row[wi] = old ^ cw
			carry[wi] = old & cw
			if carry[wi] != 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
}

// MaxIn returns the identity in req whose (counter, identity) pair is
// largest — the FCFS contention pass, where the counter field sits
// above the static identity in the arbitration number (§3.2) — or -1
// if req is empty. Cost is O(bits · words).
func (c *Counters) MaxIn(req *Vec) int {
	if req.n != c.n {
		panic(fmt.Sprintf("bitarb: MaxIn size mismatch: %d != %d", req.n, c.n))
	}
	cand := c.cand
	copy(cand, req.w)
	for b := c.cbits - 1; b >= 0; b-- {
		row := c.plane[b]
		var any uint64
		for wi, cw := range cand {
			any |= cw & row[wi]
		}
		if any != 0 {
			for wi := range cand {
				cand[wi] &= row[wi]
			}
		}
	}
	for wi := len(cand) - 1; wi >= 0; wi-- {
		if cand[wi] != 0 {
			return wi*wordBits + bits.Len64(cand[wi]) - 1
		}
	}
	return -1
}

// Clone returns a deep copy (verification hook, mirroring the core
// protocols' Clone support).
func (c *Counters) Clone() *Counters {
	d := NewCounters(c.cbits, c.n)
	for b := range c.plane {
		copy(d.plane[b], c.plane[b])
	}
	return d
}
