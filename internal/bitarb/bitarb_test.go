package bitarb

import (
	"testing"

	"busarb/internal/rng"
)

// boundaryNs exercises every word-boundary shape: single partial word,
// exactly one word, one word plus one bit, and a multi-word tail.
var boundaryNs = []int{1, 2, 63, 64, 65, 127, 128, 129, 200}

func TestVecSetClearTest(t *testing.T) {
	for _, n := range boundaryNs {
		v := NewVec(n)
		for i := 1; i <= n; i++ {
			if v.Test(i) {
				t.Fatalf("n=%d: fresh vec has bit %d set", n, i)
			}
		}
		for i := 1; i <= n; i++ {
			v.Set(i)
			if !v.Test(i) {
				t.Fatalf("n=%d: Set(%d) not observed", n, i)
			}
		}
		if v.Count() != n {
			t.Fatalf("n=%d: Count = %d", n, v.Count())
		}
		for i := 1; i <= n; i++ {
			v.Clear(i)
			if v.Test(i) {
				t.Fatalf("n=%d: Clear(%d) not observed", n, i)
			}
		}
		if v.Any() {
			t.Fatalf("n=%d: Any after clearing all", n)
		}
	}
}

func TestVecMaxAndMaxBelow(t *testing.T) {
	for _, n := range boundaryNs {
		v := NewVec(n)
		if v.Max() != -1 || v.MaxBelow(n+1) != -1 {
			t.Fatalf("n=%d: empty vec Max = %d", n, v.Max())
		}
		// Reference: a plain bool slice scanned the slow way.
		ref := make([]bool, n+1)
		src := rng.New(uint64(n)*31 + 7)
		for step := 0; step < 200; step++ {
			i := 1 + src.Intn(n)
			if ref[i] {
				v.Clear(i)
				ref[i] = false
			} else {
				v.Set(i)
				ref[i] = true
			}
			limit := 1 + src.Intn(n+2)
			want := -1
			for j := minInt(limit-1, n); j >= 1; j-- {
				if ref[j] {
					want = j
					break
				}
			}
			if got := v.MaxBelow(limit); got != want {
				t.Fatalf("n=%d step=%d: MaxBelow(%d) = %d, want %d", n, step, limit, got, want)
			}
			wantMax := -1
			for j := n; j >= 1; j-- {
				if ref[j] {
					wantMax = j
					break
				}
			}
			if got := v.Max(); got != wantMax {
				t.Fatalf("n=%d step=%d: Max = %d, want %d", n, step, got, wantMax)
			}
		}
	}
}

func TestVecMaxBelowThermometerEdges(t *testing.T) {
	v := NewVec(130)
	v.Set(64) // last bit of word 1
	v.Set(65) // first bit of word 1? (bit 65 lives in word 1)
	v.Set(128)
	cases := []struct{ limit, want int }{
		{1, -1},   // nothing below identity 1 exists
		{64, -1},  // 64 itself excluded
		{65, 64},  // word-boundary pick
		{66, 65},  // crosses into the next word
		{128, 65}, // 128 excluded
		{129, 128},
		{131, 128}, // limit beyond n clamps
		{1000, 128},
	}
	for _, c := range cases {
		if got := v.MaxBelow(c.limit); got != c.want {
			t.Errorf("MaxBelow(%d) = %d, want %d", c.limit, got, c.want)
		}
	}
}

func TestVecPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	v := NewVec(8)
	mustPanic("NewVec(0)", func() { NewVec(0) })
	mustPanic("Set(0)", func() { v.Set(0) })
	mustPanic("Set(9)", func() { v.Set(9) })
	mustPanic("Clear(-1)", func() { v.Clear(-1) })
	mustPanic("Test(9)", func() { v.Test(9) })
	mustPanic("CopyFrom mismatch", func() { v.CopyFrom(NewVec(9)) })
}

func TestVecCloneAndCopy(t *testing.T) {
	v := NewVec(70)
	v.Set(3)
	v.Set(69)
	c := v.Clone()
	v.Clear(3)
	if !c.Test(3) || !c.Test(69) {
		t.Error("Clone shares storage with original")
	}
	w := NewVec(70)
	w.CopyFrom(c)
	c.Clear(69)
	if !w.Test(69) {
		t.Error("CopyFrom shares storage with source")
	}
	w.Reset()
	if w.Any() {
		t.Error("Reset left bits set")
	}
}

func TestPlanesStoreLoadResolve(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 129} {
		for _, width := range []int{1, 7, 64} {
			p := NewPlanes(width, n)
			req := NewVec(n)
			if w, num := p.Resolve(req); w != -1 || num != 0 {
				t.Fatalf("n=%d width=%d: empty Resolve = (%d, %d)", n, width, w, num)
			}
			src := rng.New(uint64(n*100 + width))
			nums := make([]uint64, n+1)
			mask := ^uint64(0)
			if width < 64 {
				mask = 1<<uint(width) - 1
			}
			for i := 1; i <= n; i++ {
				nums[i] = src.Uint64() & mask
				p.Store(i, nums[i])
			}
			for i := 1; i <= n; i++ {
				if p.Load(i) != nums[i] {
					t.Fatalf("n=%d width=%d: Load(%d) = %b, want %b", n, width, i, p.Load(i), nums[i])
				}
			}
			// Random request subsets: winner must match a naive max scan
			// (ties toward the higher identity).
			for trial := 0; trial < 50; trial++ {
				req.Reset()
				wantW, wantNum := -1, uint64(0)
				for i := 1; i <= n; i++ {
					if src.Intn(3) == 0 {
						req.Set(i)
						if nums[i] >= wantNum || wantW < 0 {
							wantW, wantNum = i, nums[i]
						}
					}
				}
				gotW, gotNum := p.Resolve(req)
				if gotW != wantW || gotNum != wantNum {
					t.Fatalf("n=%d width=%d trial=%d: Resolve = (%d, %b), want (%d, %b)",
						n, width, trial, gotW, gotNum, wantW, wantNum)
				}
			}
		}
	}
}

func TestPlanesStoreReplaces(t *testing.T) {
	p := NewPlanes(6, 10)
	p.Store(5, 0b111111)
	p.Store(5, 0b000001)
	if got := p.Load(5); got != 1 {
		t.Fatalf("Load after re-Store = %b, want 1", got)
	}
}

func TestPlanesPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("width 0", func() { NewPlanes(0, 4) })
	mustPanic("width 65", func() { NewPlanes(65, 4) })
	mustPanic("n 0", func() { NewPlanes(4, 0) })
	p := NewPlanes(4, 4)
	mustPanic("Store out of range", func() { p.Store(0, 1) })
	mustPanic("Store too wide", func() { p.Store(1, 1<<4) })
	mustPanic("Resolve mismatch", func() { p.Resolve(NewVec(5)) })
}

// TestCountersIncAndGet cross-checks the word-parallel ripple increment
// against a plain int-slice model, including saturation.
func TestCountersIncAndGet(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		for _, cb := range []int{1, 3, 6} {
			c := NewCounters(cb, n)
			ref := make([]int, n+1)
			mask := NewVec(n)
			src := rng.New(uint64(n*10 + cb))
			for step := 0; step < 120; step++ {
				mask.Reset()
				for i := 1; i <= n; i++ {
					if src.Intn(2) == 0 {
						mask.Set(i)
						if ref[i] < c.Max() {
							ref[i]++
						}
					}
				}
				c.Inc(mask)
				if src.Intn(4) == 0 {
					i := 1 + src.Intn(n)
					c.Zero(i)
					ref[i] = 0
				}
				for i := 1; i <= n; i++ {
					if got := c.Get(i); got != ref[i] {
						t.Fatalf("n=%d cb=%d step=%d: Get(%d) = %d, want %d", n, cb, step, i, got, ref[i])
					}
				}
			}
		}
	}
}

func TestCountersIncExceptZero(t *testing.T) {
	c := NewCounters(3, 70)
	mask := NewVec(70)
	for i := 1; i <= 70; i++ {
		mask.Set(i)
	}
	// Give identities 64..70 a nonzero count (word-boundary straddle).
	pre := NewVec(70)
	for i := 64; i <= 70; i++ {
		pre.Set(i)
	}
	c.Inc(pre)
	c.IncExceptZero(mask)
	for i := 1; i <= 63; i++ {
		if got := c.Get(i); got != 0 {
			t.Fatalf("zero-counter identity %d incremented to %d", i, got)
		}
	}
	for i := 64; i <= 70; i++ {
		if got := c.Get(i); got != 2 {
			t.Fatalf("nonzero identity %d = %d, want 2", i, got)
		}
	}
}

// TestCountersMaxIn cross-checks the (counter, identity) tournament
// against a naive scan.
func TestCountersMaxIn(t *testing.T) {
	for _, n := range []int{1, 64, 65, 150} {
		c := NewCounters(4, n)
		req := NewVec(n)
		ref := make([]int, n+1)
		src := rng.New(uint64(n) + 5)
		if c.MaxIn(req) != -1 {
			t.Fatalf("n=%d: MaxIn on empty req != -1", n)
		}
		mask := NewVec(n)
		for step := 0; step < 100; step++ {
			mask.Reset()
			for i := 1; i <= n; i++ {
				if src.Intn(3) == 0 {
					mask.Set(i)
					if ref[i] < c.Max() {
						ref[i]++
					}
				}
			}
			c.Inc(mask)
			req.Reset()
			want := -1
			for i := 1; i <= n; i++ {
				if src.Intn(2) == 0 {
					req.Set(i)
					if want < 0 || ref[i] > ref[want] || (ref[i] == ref[want] && i > want) {
						want = i
					}
				}
			}
			if got := c.MaxIn(req); got != want {
				t.Fatalf("n=%d step=%d: MaxIn = %d, want %d", n, step, got, want)
			}
		}
	}
}

func TestCountersClone(t *testing.T) {
	c := NewCounters(3, 66)
	m := NewVec(66)
	m.Set(65)
	m.Set(2)
	c.Inc(m)
	d := c.Clone()
	c.Inc(m)
	if d.Get(65) != 1 || d.Get(2) != 1 {
		t.Error("Clone shares planes with original")
	}
	c.Reset()
	if c.Get(65) != 0 || d.Get(65) != 1 {
		t.Error("Reset leaked into clone")
	}
}

func TestCountersPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("width 0", func() { NewCounters(0, 4) })
	mustPanic("width 64", func() { NewCounters(64, 4) })
	c := NewCounters(2, 4)
	mustPanic("Get(0)", func() { c.Get(0) })
	mustPanic("Zero(5)", func() { c.Zero(5) })
	mustPanic("MaxIn mismatch", func() { c.MaxIn(NewVec(5)) })
}

// TestSteadyStateAllocs pins the kernel's zero-allocation contract:
// every operation the hot arbitration paths use runs without
// allocating once the structures are built.
func TestSteadyStateAllocs(t *testing.T) {
	const n = 200
	v := NewVec(n)
	p := NewPlanes(12, n)
	c := NewCounters(8, n)
	for i := 1; i <= n; i += 3 {
		v.Set(i)
		p.Store(i, uint64(i))
	}
	work := func() {
		v.Max()
		v.MaxBelow(77)
		p.Resolve(v)
		c.Inc(v)
		c.IncExceptZero(v)
		c.MaxIn(v)
		c.Zero(1)
	}
	work()
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Errorf("steady-state kernel ops allocate %v times, want 0", allocs)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
