package sim

import (
	"testing"
	"testing/quick"

	"busarb/internal/rng"
)

func TestEventOrdering(t *testing.T) {
	var s Scheduler
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(nil)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(nil)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	var s Scheduler
	fired := -1.0
	s.At(2, func() {
		s.After(0.5, func() { fired = s.Now() })
	})
	s.Run(nil)
	if fired != 2.5 {
		t.Errorf("fired at %v, want 2.5", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Scheduler
	s.At(5, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	s.RunUntil(5)
	if count != 5 {
		t.Errorf("processed %d events, want 5", count)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %v, want 5", s.Now())
	}
	s.RunUntil(20)
	if count != 10 || s.Now() != 20 {
		t.Errorf("count=%d Now=%v", count, s.Now())
	}
}

func TestRunWithStop(t *testing.T) {
	var s Scheduler
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	s.Run(func() bool { return count >= 3 })
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if s.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", s.Pending())
	}
}

func TestReset(t *testing.T) {
	var s Scheduler
	s.At(1, func() {})
	s.Step()
	s.At(9, func() {})
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 {
		t.Error("Reset incomplete")
	}
	ran := false
	s.At(0.5, func() { ran = true })
	s.Run(nil)
	if !ran {
		t.Error("scheduler unusable after Reset")
	}
}

// Property: events always fire in non-decreasing time order regardless
// of insertion order, including events scheduled from within events.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var s Scheduler
		var times []float64
		var schedule func(depth int)
		schedule = func(depth int) {
			times = append(times, s.Now())
			if depth < 3 && src.Intn(2) == 0 {
				s.After(src.Float64()*5, func() { schedule(depth + 1) })
			}
		}
		for i := 0; i < 30; i++ {
			s.At(src.Float64()*100, func() { schedule(0) })
		}
		s.Run(nil)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduler(b *testing.B) {
	var s Scheduler
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}
