package sim

import "testing"

// TestSchedulerSteadyStateAllocs guards the event engine's central
// property: once the queue's backing array has grown, scheduling and
// running events allocates nothing. A regression here (e.g. reverting to
// container/heap's interface{} boxing) would put one allocation back on
// every simulated event.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	var s Scheduler
	fn := func() {}
	// Warm the queue to its steady-state capacity.
	for i := 0; i < 64; i++ {
		s.After(float64(i), fn)
	}
	for s.Step() {
	}

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.After(float64(i), fn)
		}
		for s.Step() {
		}
	})
	if allocs != 0 {
		t.Errorf("scheduler hot loop allocates %v times per 64-event cycle, want 0", allocs)
	}
}

// TestSchedulerAtSteadyStateAllocs extends the steady-state guard to
// the absolute-time entry point and the predicate-driven run loop, the
// paths the Horizon cutoff and the observability layer lean on.
func TestSchedulerAtSteadyStateAllocs(t *testing.T) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.At(float64(i), fn)
	}
	s.Run(func() bool { return false })

	allocs := testing.AllocsPerRun(100, func() {
		base := s.Now()
		for i := 0; i < 64; i++ {
			s.At(base+float64(i+1), fn)
		}
		s.Run(func() bool { return false })
	})
	if allocs != 0 {
		t.Errorf("At+Run hot loop allocates %v times per 64-event cycle, want 0", allocs)
	}
}

// TestSchedulerResetKeepsCapacity pins that Reset retains the grown
// backing array (Run in bussim resets per batch; a fresh array each
// batch would defeat the pooling).
func TestSchedulerResetKeepsCapacity(t *testing.T) {
	var s Scheduler
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(float64(i), fn)
	}
	s.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.After(float64(i), fn)
		}
		s.Reset()
	})
	if allocs != 0 {
		t.Errorf("schedule+Reset allocates %v times, want 0", allocs)
	}
}
