// Package sim provides a minimal discrete-event scheduler: a time-ordered
// event queue with deterministic FIFO tie-breaking for simultaneous
// events. Both the queueing-level bus simulator (package bussim) and the
// cycle-level bus model (package cyclesim) run on it.
//
// The queue is a concrete index-based binary heap over a slice of event
// structs. It deliberately avoids container/heap: that interface boxes
// every element through interface{} on Push and Pop, which costs one heap
// allocation per scheduled event — the dominant allocation of the whole
// simulator. With the concrete heap, scheduling an event is allocation
// free once the queue's backing array has grown to its steady-state
// capacity (Pop reslices; it never frees).
package sim

import (
	"fmt"
	"math"
)

// Scheduler is a discrete-event clock and pending-event queue. The zero
// value is ready to use at time 0.
type Scheduler struct {
	now   float64
	seq   uint64
	queue []event
}

type event struct {
	time float64
	seq  uint64 // schedule order; breaks ties deterministically (FIFO)
	fn   func()
}

// before is the heap order: earlier time first, then schedule order.
func (e event) before(o event) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// push adds e to the heap (sift-up).
func (s *Scheduler) push(e event) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	s.queue = q
}

// pop removes and returns the minimum event (sift-down). The backing
// array's capacity is retained for reuse.
func (s *Scheduler) pop() event {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // drop the closure reference so it can be collected
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q[r].before(q[l]) {
			child = r
		}
		if !q[child].before(q[i]) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	s.queue = q
	return top
}

// Now returns the current simulation time.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of scheduled events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// would silently corrupt causality.
func (s *Scheduler) At(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.push(event{time: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn at now+d (d must be >= 0).
func (s *Scheduler) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event, advancing the clock to its time. It reports
// whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.pop()
	s.now = e.time
	e.fn()
	return true
}

// RunUntil processes events with time <= t, then advances the clock to
// exactly t.
func (s *Scheduler) RunUntil(t float64) {
	for len(s.queue) > 0 && s.queue[0].time <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Run processes events until the queue empties or stop returns true
// (checked before each event). A nil stop runs to exhaustion.
func (s *Scheduler) Run(stop func() bool) {
	for len(s.queue) > 0 {
		if stop != nil && stop() {
			return
		}
		s.Step()
	}
}

// Reset discards all pending events and rewinds the clock to zero. The
// queue's backing array is retained.
func (s *Scheduler) Reset() {
	s.now = 0
	s.seq = 0
	for i := range s.queue {
		s.queue[i] = event{}
	}
	s.queue = s.queue[:0]
}
