// Package sim provides a minimal discrete-event scheduler: a time-ordered
// event queue with deterministic FIFO tie-breaking for simultaneous
// events. Both the queueing-level bus simulator (package bussim) and the
// cycle-level bus model (package cyclesim) run on it.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Scheduler is a discrete-event clock and pending-event queue. The zero
// value is ready to use at time 0.
type Scheduler struct {
	now   float64
	seq   uint64
	queue eventHeap
}

type event struct {
	time float64
	seq  uint64 // schedule order; breaks ties deterministically (FIFO)
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of scheduled events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// would silently corrupt causality.
func (s *Scheduler) At(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.queue.pushEvent(event{time: t, seq: s.seq, fn: fn})
	s.seq++
}

func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// After schedules fn at now+d (d must be >= 0).
func (s *Scheduler) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event, advancing the clock to its time. It reports
// whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.time
	e.fn()
	return true
}

// RunUntil processes events with time <= t, then advances the clock to
// exactly t.
func (s *Scheduler) RunUntil(t float64) {
	for len(s.queue) > 0 && s.queue[0].time <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Run processes events until the queue empties or stop returns true
// (checked before each event). A nil stop runs to exhaustion.
func (s *Scheduler) Run(stop func() bool) {
	for len(s.queue) > 0 {
		if stop != nil && stop() {
			return
		}
		s.Step()
	}
}

// Reset discards all pending events and rewinds the clock to zero.
func (s *Scheduler) Reset() {
	s.now = 0
	s.seq = 0
	s.queue = s.queue[:0]
}
