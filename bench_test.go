package busarb

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation section, plus the design-choice ablations.
// Each benchmark regenerates its artifact at a reduced (but shape-
// preserving) statistical effort and reports domain metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a full
// reproduction run. cmd/paper produces the full-effort versions.

import (
	"runtime"
	"testing"

	"busarb/internal/experiment"
)

// benchOpts keeps each benchmark iteration around a second. The load
// points of a table run across all cores; results are identical to a
// sequential run because every simulation is independently seeded.
var benchOpts = ExperimentOpts{
	Batches: 10, BatchSize: 1500, Seed: 1988,
	Parallel: runtime.GOMAXPROCS(0),
}

func BenchmarkTable41_10Agents(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		rows := Table41(10, false, benchOpts)
		peak = 0
		for _, r := range rows {
			if r.RatioFCFS.Mean > peak {
				peak = r.RatioFCFS.Mean
			}
		}
	}
	b.ReportMetric(peak, "peak-FCFS-ratio")
}

func BenchmarkTable41_30Agents(b *testing.B) {
	var aap float64
	for i := 0; i < b.N; i++ {
		rows := Table41(30, true, benchOpts)
		aap = rows[len(rows)-1].RatioAAP.Mean
	}
	b.ReportMetric(aap, "AAP-ratio-at-7.5")
}

func BenchmarkTable41_64Agents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table41(64, false, benchOpts)
	}
}

// BenchmarkTable41_1024Agents runs Table 4.1 at the kernel-scale agent
// count the bit-parallel arbitration kernel unlocked (ROADMAP item 1 of
// PR 5) — far past the former ~64-agent practical ceiling. Reduced
// batch effort keeps an iteration well under a second.
func BenchmarkTable41_1024Agents(b *testing.B) {
	opts := ExperimentOpts{
		Batches: 3, BatchSize: 1000, Seed: 1988,
		Parallel: runtime.GOMAXPROCS(0),
	}
	for i := 0; i < b.N; i++ {
		Table41(1024, false, opts)
	}
}

func BenchmarkTable42_10Agents(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = 0
		for _, r := range Table42(10, benchOpts) {
			if r.SDRatio.Mean > peak {
				peak = r.SDRatio.Mean
			}
		}
	}
	b.ReportMetric(peak, "peak-sd-ratio")
}

func BenchmarkTable42_30Agents(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = 0
		for _, r := range Table42(30, benchOpts) {
			if r.SDRatio.Mean > peak {
				peak = r.SDRatio.Mean
			}
		}
	}
	b.ReportMetric(peak, "peak-sd-ratio")
}

func BenchmarkTable42_64Agents(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = 0
		for _, r := range Table42(64, benchOpts) {
			if r.SDRatio.Mean > peak {
				peak = r.SDRatio.Mean
			}
		}
	}
	b.ReportMetric(peak, "peak-sd-ratio")
}

func BenchmarkFigure41(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		f := Figure41(30, 1.5, benchOpts)
		// Largest FCFS-over-RR CDF gap: the "sharp rise" of Figure 4.1.
		gap = 0
		for _, p := range f.Points {
			if d := p.FCFS - p.RR; d > gap {
				gap = d
			}
		}
	}
	b.ReportMetric(gap, "max-CDF-gap")
}

func BenchmarkTable43_10Agents(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		rows := Table43(10, benchOpts)
		adv = 0
		for _, r := range rows {
			if d := r.ProdFCFS - r.ProdRR; d > adv {
				adv = d
			}
		}
	}
	b.ReportMetric(adv, "max-FCFS-prod-advantage")
}

func BenchmarkTable43_30Agents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table43(30, benchOpts)
	}
}

func BenchmarkTable43_64Agents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table43(64, benchOpts)
	}
}

func BenchmarkTable44_DoubleRate(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := Table44(30, 2, benchOpts)
		last = rows[len(rows)-1].RatioFCFS.Mean
	}
	b.ReportMetric(last, "FCFS-ratio-at-peak-load")
}

func BenchmarkTable44_QuadRate(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := Table44(30, 4, benchOpts)
		last = rows[len(rows)-1].RatioFCFS.Mean
	}
	b.ReportMetric(last, "FCFS-ratio-at-peak-load")
}

func BenchmarkTable45_10Agents(b *testing.B) {
	var cv0 float64
	for i := 0; i < b.N; i++ {
		cv0 = Table45(10, benchOpts)[0].Ratio.Mean
	}
	b.ReportMetric(cv0, "cv0-slow-ratio")
}

func BenchmarkTable45_30Agents(b *testing.B) {
	var cv0 float64
	for i := 0; i < b.N; i++ {
		cv0 = Table45(30, benchOpts)[0].Ratio.Mean
	}
	b.ReportMetric(cv0, "cv0-slow-ratio")
}

func BenchmarkTable45_64Agents(b *testing.B) {
	var cv0 float64
	for i := 0; i < b.N; i++ {
		cv0 = Table45(64, benchOpts)[0].Ratio.Mean
	}
	b.ReportMetric(cv0, "cv0-slow-ratio")
}

// Ablation benchmarks (DESIGN.md §6).

func BenchmarkAblationCounterBits(b *testing.B) {
	var oneBit float64
	for i := 0; i < b.N; i++ {
		rows := experiment.AblationCounterBits(10, 2.0, benchOpts)
		oneBit = rows[0].Ratio.Mean
	}
	b.ReportMetric(oneBit, "1bit-unfairness")
}

func BenchmarkAblationHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationHybrid(10, 2.0, benchOpts)
	}
}

func BenchmarkAblationRR3(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range experiment.AblationRR3(10, benchOpts) {
			if d := r.WaitRR3 - r.WaitRR1; d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "worst-repass-cost")
}

func BenchmarkAblationSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.AblationSnapshot(10, benchOpts)
	}
}

// Micro-benchmarks of the simulator core: events per second of the DES
// and grants per second of the line-level model.

func BenchmarkSimulatorThroughput(b *testing.B) {
	sc := EqualWorkload(30, 1.5, 1.0)
	cfg := SimConfig{Protocol: MustProtocol("RR1"), Seed: 1, Batches: 2, BatchSize: 1000}
	sc.Apply(&cfg)
	b.ResetTimer()
	completions := int64(0)
	for i := 0; i < b.N; i++ {
		completions += Simulate(cfg).Completions
	}
	b.ReportMetric(float64(completions)/b.Elapsed().Seconds(), "completions/s")
}

func BenchmarkLineLevelBusSaturated(b *testing.B) {
	bus, err := LineLevelBus("RR1", 16)
	if err != nil {
		b.Fatal(err)
	}
	for id := 1; id <= 16; id++ {
		bus.Request(id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := bus.Step(); g != nil {
			bus.Request(g.Agent)
		}
	}
}

// Substrate benchmarks: the robustness study, the multiprocessor and
// coherent machines, and the exhaustive verifier.

func BenchmarkRobustnessStudy(b *testing.B) {
	var fair float64
	for i := 0; i < b.N; i++ {
		rows := experiment.Robustness(10, 20000, []int{0, 500}, 21)
		fair = rows[1].FairnessRot
	}
	b.ReportMetric(fair, "rot-fairness-after-faults")
}

func BenchmarkMPMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		procs := make([]*Processor, 8)
		for j := range procs {
			procs[j] = &Processor{
				Cache:       NewCache(4096, 32, 2),
				Pattern:     &HotColdPattern{HotBytes: 2048, ColdBytes: 1 << 18, HotProb: 0.9, WriteFrac: 0.3},
				CyclePerRef: 0.1,
			}
		}
		RunMachine(MachineConfig{
			Processors: procs,
			Protocol:   MustProtocol("RR1"),
			Seed:       1,
			Batches:    2, BatchSize: 2000,
		})
	}
}

func BenchmarkCoherentMachine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		procs := make([]*CoherentProc, 6)
		for j := range procs {
			procs[j] = &CoherentProc{
				Pattern:     &HotColdPattern{HotBytes: 256, ColdBytes: 1 << 16, HotProb: 0.6, WriteFrac: 0.4},
				CyclePerRef: 0.2,
			}
		}
		RunCoherent(CoherentConfig{
			Procs:    procs,
			Protocol: MustProtocol("RR1"),
			Seed:     1,
			Duration: 2000,
		})
	}
}

func BenchmarkSplitVsConnected(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows := experiment.SplitVsConnected(12, 8, 2.0, []float64{2.0},
			ExperimentOpts{Batches: 6, BatchSize: 1000, Seed: 11})
		gain = rows[0].TputSplit / rows[0].TputConnected
	}
	b.ReportMetric(gain, "split-throughput-gain")
}

func BenchmarkPriorityStudy(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		rows := experiment.PriorityStudy(10, 2.0, []float64{0.1},
			ExperimentOpts{Batches: 6, BatchSize: 1000, Seed: 31})
		adv = rows[0].WNormal / rows[0].WUrgent
	}
	b.ReportMetric(adv, "urgent-wait-advantage")
}

func BenchmarkCostTable(b *testing.B) {
	var lines int
	for i := 0; i < b.N; i++ {
		rows := experiment.CostTable(30)
		lines = rows[len(rows)-1].ExtraLines
	}
	b.ReportMetric(float64(lines), "fcfs2-extra-lines")
}
