// Command arbload drives a closed-loop workload against a running arbd
// daemon: N agents, each with a single outstanding request, thinking
// for a sampled interrequest time between grants — the paper's §4.1
// workload pointed at a live socket. It reports per-agent grant
// throughput, the bandwidth ratio t_N/t_1, and acquire-wait quantiles:
// Table 4.1 measured over the network.
//
// The -target scheme selects the transport: http:// drives the JSON
// surface, tcp:// the binary protocol (every agent multiplexed over
// one persistent connection). A comma-separated -target list drives an
// arbd cluster through client.DialCluster, routing each resource to
// its owning member. All traffic goes through busarb/client.
//
// -resources spreads the agents round-robin over several resources
// (agent i drives resource (i-1)%R with per-resource identity
// (i-1)/R+1), so one run can load every shard of a cluster.
//
// Examples:
//
//	arbload -target http://127.0.0.1:8321 -resource bus -agents 10 -requests 100
//	arbload -target tcp://127.0.0.1:8322 -resource bus -agents 100 -requests 50
//	arbload -resource bus -agents 30 -requests 20 -hold 1ms -timeout 2s
//	arbload -target tcp://h1:8322,tcp://h2:8322 -resources bus,disk,dma -agents 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"busarb/internal/arbd"
)

// splitList parses a comma-separated flag value, dropping empty
// entries.
func splitList(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8321",
		"daemon target; the scheme selects the transport (http:// or tcp://); a comma-separated list drives an arbd cluster")
	resource := flag.String("resource", "bus", "resource to arbitrate for")
	resourceList := flag.String("resources", "",
		"comma-separated resources to spread the agents over round-robin (overrides -resource)")
	agents := flag.Int("agents", 10, "number of closed-loop agents (identities 1..N)")
	requests := flag.Int("requests", 100, "grant budget per agent")
	think := flag.Duration("think", 0, "mean interrequest (think) time; 0 is saturation")
	cv := flag.Float64("cv", 1.0, "coefficient of variation of the think time")
	hold := flag.Duration("hold", 0, "lease hold time before release")
	timeout := flag.Duration("timeout", 0, "per-acquire client timeout; 0 waits indefinitely")
	seed := flag.Uint64("seed", 1, "think-time random seed")
	flag.Parse()

	var resources []string
	if *resourceList != "" {
		if resources = splitList(*resourceList); len(resources) == 0 {
			fmt.Fprintf(os.Stderr, "arbload: -resources spec %q names no resources\n", *resourceList)
			os.Exit(1)
		}
	}
	targets := splitList(*target)
	cfg := arbd.LoadConfig{
		Resource:  *resource,
		Resources: resources,
		Agents:    *agents,
		Requests:  *requests,
		ThinkMean: think.Seconds(),
		ThinkCV:   *cv,
		Hold:      *hold,
		Timeout:   *timeout,
		Seed:      *seed,
	}
	if len(targets) > 1 {
		cfg.Targets = targets
	} else if len(targets) == 1 {
		cfg.Target = targets[0]
	} else {
		cfg.Target = *target
	}
	rep, err := arbd.RunLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rep.WriteReport(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "arbload:", err)
		os.Exit(1)
	}
}
