// Command arbd serves bus-style arbitration: named resources are
// granted to networked agents by the paper's protocols, re-hosted as
// real-time grant schedulers (internal/grant, internal/arbd), over two
// transports sharing one daemon — JSON over HTTP (-addr) and the
// compact binary protocol (-baddr; spec in docs/WIRE.md).
//
// Examples:
//
//	arbd -addr :8321 -resources bus:10:RR1
//	arbd -resources "bus:10:RR1,disk:4:FCFS2" -tick 500us -ttl 5s
//	arbd -resources bus:8x4:RR1/FCFS2     # 4 clusters of 8, tree arbitration
//	arbd -addr 127.0.0.1:0 -resources bus:8:FP   # free port, printed
//	arbd -addr :8321 -baddr :8322                # HTTP and binary
//
// -cluster turns the process into one member of an arbd cluster
// (internal/arbd/cluster): the flag lists every member as
// name=tcp://host:port pairs, -self names this one, and the
// consistent-hash ring decides which of the -resources this node
// actually runs — frames for the rest are forwarded to their owners
// over the binary protocol. Every member must be started with the
// same -cluster, -resources and -cluster-seed. The binary listener is
// mandatory in cluster mode (it is the inter-node transport) and
// defaults to the self member's address:
//
//	arbd -cluster "a=tcp://h1:8322,b=tcp://h2:8322" -self a -resources "bus:10:RR1,disk:4:FCFS2"
//
// The daemon prints "arbd: listening on HOST:PORT" once HTTP is
// accepting connections ("arbd: binary listening on HOST:PORT" for
// -baddr) and exits 0 on SIGINT/SIGTERM after answering every queued
// acquire with the overload code.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"busarb/internal/arbd"
	"busarb/internal/arbd/cluster"
	"busarb/internal/topo"
)

// parseCluster parses the -cluster spec: comma-separated
// name=tcp://host:port pairs, one per member.
func parseCluster(spec string) ([]cluster.Member, error) {
	var out []cluster.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("arbd: bad cluster member %q, want name=addr", part)
		}
		out = append(out, cluster.Member{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("arbd: -cluster spec %q names no members", spec)
	}
	return out, nil
}

// parseResources parses the -resources spec: a comma-separated list of
// name:agents:protocol triples sharing the flag-level timing knobs.
// The agents and protocol fields may describe an arbitration tree,
// level by level from the leaves: "bus:8x4:RR1/FCFS2" is 4 clusters of
// 8 agents arbitrating under RR1, cluster winners competing under
// FCFS2 at the root.
func parseResources(spec string, tick, ttl time.Duration, queue int, window float64) ([]arbd.ResourceConfig, error) {
	var out []arbd.ResourceConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("arbd: bad resource spec %q, want name:agents:protocol", part)
		}
		rc := arbd.ResourceConfig{
			Name:          fields[0],
			Tick:          tick,
			TTL:           ttl,
			MaxQueue:      queue,
			MetricsWindow: window,
		}
		if strings.Contains(fields[1], "x") || strings.Contains(fields[2], "/") {
			tree, err := topo.ParseUniform(fields[1], fields[2])
			if err != nil {
				return nil, fmt.Errorf("arbd: bad tree spec %q: %v", part, err)
			}
			rc.Topo = tree
		} else {
			agents, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("arbd: bad agent count in %q: %v", part, err)
			}
			rc.Agents = agents
			rc.Protocol = fields[2]
		}
		out = append(out, rc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("arbd: -resources spec %q names no resources", spec)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "HTTP listen address (host:port; port 0 picks a free port)")
	baddr := flag.String("baddr", "", "binary-protocol listen address (empty: binary transport off)")
	resources := flag.String("resources", "bus:10:RR1",
		"comma-separated resource specs, each name:agents:protocol (tree form: name:8x4:RR1/FCFS2, leaves first)")
	tick := flag.Duration("tick", 0, "bus-cycle tick for every resource (0: 1ms default)")
	ttl := flag.Duration("ttl", 0, "maximum lease lifetime (0: 30s default)")
	queue := flag.Int("queue", 0, "max queued waiters per resource (0: 1024 default)")
	window := flag.Float64("metrics-window", 0, "/metricz wait-quantile window in seconds (0: 5s default)")
	clusterSpec := flag.String("cluster", "",
		"cluster membership: comma-separated name=tcp://host:port pairs, identical on every member (empty: standalone)")
	self := flag.String("self", "self", "this node's member name in -cluster")
	clusterSeed := flag.Uint64("cluster-seed", 0, "consistent-hash ring seed; must match on every member")
	flag.Parse()

	rcs, err := parseResources(*resources, *tick, *ttl, *queue, *window)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *clusterSpec != "" {
		runCluster(rcs, *clusterSpec, *self, *clusterSeed, *addr, *baddr)
		return
	}
	d, err := arbd.New(arbd.Config{Resources: rcs})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		d.Close()
		fmt.Fprintln(os.Stderr, "arbd:", err)
		os.Exit(1)
	}
	var bln net.Listener
	if *baddr != "" {
		bln, err = net.Listen("tcp", *baddr)
		if err != nil {
			ln.Close()
			d.Close()
			fmt.Fprintln(os.Stderr, "arbd:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("arbd: listening on %s\n", ln.Addr())
	if bln != nil {
		fmt.Printf("arbd: binary listening on %s\n", bln.Addr())
	}
	for _, rc := range rcs {
		agents := rc.Agents
		if rc.Topo != nil {
			agents = rc.Topo.TotalAgents()
		}
		fmt.Printf("arbd: serving %q to %d agents under %s\n", rc.Name, agents, rc.ProtocolName())
	}

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	var bsrv *arbd.BinaryServer
	if bln != nil {
		bsrv = arbd.NewBinaryServer(d)
		go func() {
			if err := bsrv.Serve(bln); err != nil && err != arbd.ErrServerClosed {
				serveErr <- err
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("arbd: %s, shutting down\n", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "arbd:", err)
		if bsrv != nil {
			bsrv.Close()
		}
		d.Close()
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if bsrv != nil {
		bsrv.Close()
	}
	d.Close()
}

// runCluster is the -cluster serving path: one cluster.Node wrapping
// the local shards, with the binary listener doubling as the
// inter-node transport and the HTTP listener serving the node's
// /clusterz- and /metricz-augmented surface.
func runCluster(rcs []arbd.ResourceConfig, spec, self string, seed uint64, addr, baddr string) {
	members, err := parseCluster(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	node, err := cluster.New(cluster.Config{
		Self:      self,
		Members:   members,
		Resources: rcs,
		Seed:      seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbd:", err)
		os.Exit(1)
	}
	if baddr == "" {
		// The self member's advertised address is where peers will dial;
		// listening there is the sane default. -baddr still overrides for
		// hosts that must bind a different interface than they advertise.
		baddr = strings.TrimPrefix(node.Self().Addr, "tcp://")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		node.Close()
		fmt.Fprintln(os.Stderr, "arbd:", err)
		os.Exit(1)
	}
	bln, err := net.Listen("tcp", baddr)
	if err != nil {
		ln.Close()
		node.Close()
		fmt.Fprintln(os.Stderr, "arbd:", err)
		os.Exit(1)
	}
	fmt.Printf("arbd: listening on %s\n", ln.Addr())
	fmt.Printf("arbd: binary listening on %s\n", bln.Addr())
	owned := 0
	for _, rc := range rcs {
		if node.Owns(rc.Name) {
			owned++
		}
	}
	fmt.Printf("arbd: cluster member %q of %d; ring assigns this node %d/%d resources\n",
		self, len(members), owned, len(rcs))

	srv := &http.Server{Handler: node.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	go func() {
		if err := node.Serve(bln); err != nil && err != arbd.ErrServerClosed {
			serveErr <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("arbd: %s, shutting down\n", sig)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "arbd:", err)
		node.Close()
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	node.Close()
}
