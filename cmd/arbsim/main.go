// Command arbsim runs a single bus-arbitration simulation and reports
// its measurements: throughput, utilization, fairness ratio, waiting
// time mean/σ, and per-agent breakdowns.
//
// Examples:
//
//	arbsim -n 10 -protocol RR1 -load 1.5
//	arbsim -n 30 -protocol FCFS1 -load 2.0 -cv 0.5 -peragent
//	arbsim -n 30 -protocol FCFS2 -scaled 4          # agent 1 at 4x rate
//	arbsim -n 10 -protocol RR1 -worstcase -cv 0     # the §4.5 scenario
//	arbsim -scenario machine.json -json             # heterogeneous agents
//	arbsim -n 8 -protocol RR3 -trace run.jsonl -batchsize 50  # JSONL event trace
//	arbsim -n 10 -protocol RR1 -metrics-window 500  # windowed per-agent metrics
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"busarb/internal/bussim"
	"busarb/internal/core"
	"busarb/internal/experiment"
	"busarb/internal/mp"
	"busarb/internal/obs"
	"busarb/internal/report"
	"busarb/internal/scenario"
	"busarb/internal/workload"
)

// runCompare runs several protocols on the identical workload — across
// parallel workers when requested; each run is independently seeded so
// the output is the same either way — and prints one summary line each.
func runCompare(list string, n int, load, cv float64, seed uint64, batches, batchSize, parallel int) {
	names := splitTrim(list)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "arbsim: -compare needs a non-empty protocol list")
		os.Exit(1)
	}
	// Validate the whole list before burning simulation time on any of it.
	factories := make([]core.Factory, len(names))
	for i, name := range names {
		factory, err := core.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "known protocols:", core.Names())
			os.Exit(1)
		}
		factories[i] = factory
	}
	results := make([]*bussim.Result, len(names))
	experiment.Opts{Parallel: parallel}.ForEach(len(names), func(i int) {
		cfg := bussim.Config{
			Protocol:  factories[i],
			Seed:      seed,
			Batches:   batches,
			BatchSize: batchSize,
		}
		workload.Equal(n, load, cv).Apply(&cfg)
		results[i] = bussim.Run(cfg)
	})
	fmt.Printf("%d agents, load %.2f, cv %.2f:\n\n", n, load, cv)
	fmt.Printf("  %-8s  %-12s  %-10s  %-10s  %-12s\n",
		"proto", "utilization", "W", "σW", "tN/t1")
	for i, res := range results {
		fmt.Printf("  %-8s  %-12.3f  %-10.2f  %-10.2f  %-12.2f\n",
			names[i], res.Utilization.Mean, res.WaitMean.Mean, res.WaitStdDev.Mean,
			res.ThroughputRatio(n, 1).Mean)
	}
}

func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runMachineScenario executes a multiprocessor scenario file and prints
// bus- and application-level results.
func runMachineScenario(raw []byte, seed uint64, batches, batchSize int) {
	mf, err := scenario.LoadMachine(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := mf.Config()
	if cfg.Seed == 0 {
		cfg.Seed = seed
	}
	if cfg.Batches == 0 {
		cfg.Batches = batches
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = batchSize
	}
	res := mp.Run(cfg)
	fmt.Printf("machine:       %s (%d processors)\n", mf.Name, len(cfg.Processors))
	fmt.Printf("protocol:      %s\n", res.Bus.ProtocolName)
	fmt.Printf("bus util:      %s\n", res.Bus.Utilization)
	fmt.Printf("mean wait:     %s\n", res.Bus.WaitMean)
	fmt.Printf("slowest/mean:  %.3f\n", res.SlowestRelative())
	fmt.Println("\n  proc   progress(ref/t)   miss rate")
	for i := range res.Progress {
		fmt.Printf("  %4d   %15.2f   %9.4f\n", i+1, res.Progress[i], res.MissRate[i])
	}
}

func main() {
	var (
		n         = flag.Int("n", 10, "number of agents")
		protoName = flag.String("protocol", "RR1", "protocol: FP, RR1, RR2, RR3, FCFS1, FCFS2, AAP1, AAP2, Hybrid")
		load      = flag.Float64("load", 1.5, "total offered load")
		cv        = flag.Float64("cv", 1.0, "interrequest coefficient of variation (0=deterministic, 1=exponential)")
		scaled    = flag.Float64("scaled", 0, "if > 0, agent 1 requests at this multiple of the others' rate")
		worst     = flag.Bool("worstcase", false, "use the §4.5 worst-case workload (ignores -load)")
		scenFile  = flag.String("scenario", "", "load a JSON scenario file (overrides -n/-protocol/-load/-cv)")
		seed      = flag.Uint64("seed", 1, "random seed")
		batches   = flag.Int("batches", 10, "batches")
		batchSize = flag.Int("batchsize", 8000, "completions per batch")
		perAgent  = flag.Bool("peragent", false, "print per-agent throughput and waiting time")
		asJSON    = flag.Bool("json", false, "emit the result as JSON")
		traceFile = flag.String("trace", "", "write a JSONL event trace to this file")
		metricsW  = flag.Float64("metrics-window", 0, "collect per-agent metrics in windows of this width (time units) and print them after the run")
		window    = flag.Int("window", 1, "outstanding requests per agent (>1 uses the multi-outstanding FCFS of §3.2)")
		compare   = flag.String("compare", "", "comma-separated protocols to run side by side (overrides -protocol)")
		parallel  = flag.Int("parallel", 1, "concurrent simulations for -compare (1 = sequential; results are identical)")
	)
	flag.Parse()

	if *compare != "" {
		runCompare(*compare, *n, *load, *cv, *seed, *batches, *batchSize, *parallel)
		return
	}

	var cfg bussim.Config
	name := ""
	if *scenFile != "" {
		raw, err := os.ReadFile(*scenFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if scenario.IsMachineFile(raw) {
			runMachineScenario(raw, *seed, *batches, *batchSize)
			return
		}
		sf, err := scenario.Load(bytes.NewReader(raw))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg = sf.Config()
		if cfg.Seed == 0 {
			cfg.Seed = *seed
		}
		if cfg.Batches == 0 {
			cfg.Batches = *batches
		}
		if cfg.BatchSize == 0 {
			cfg.BatchSize = *batchSize
		}
		name = sf.Name
	} else {
		factory, err := core.ByName(*protoName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			fmt.Fprintln(os.Stderr, "known protocols:", core.Names())
			os.Exit(1)
		}
		if *window > 1 {
			w := *window
			factory = func(m int) core.Protocol { return core.NewMultiFCFS(m, w) }
		}
		var sc workload.Scenario
		switch {
		case *worst:
			sc = workload.WorstCaseRR(*n, *cv)
		case *scaled > 0:
			sc = workload.OneScaled(*n, *load, *scaled, *cv)
		default:
			sc = workload.Equal(*n, *load, *cv)
		}
		cfg = bussim.Config{
			Protocol:  factory,
			Seed:      *seed,
			Batches:   *batches,
			BatchSize: *batchSize,
			Window:    *window,
		}
		sc.Apply(&cfg)
		name = sc.Name
	}
	// Observability: an optional JSONL trace file and optional windowed
	// metrics, fanned out to one Observer.
	var probes obs.Multi
	var traceW *obs.JSONLWriter
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arbsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		traceW = &obs.JSONLWriter{W: f}
		probes = append(probes, traceW)
	}
	var metrics *obs.Metrics
	metricsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "metrics-window" {
			metricsSet = true
		}
	})
	if metricsSet {
		if *metricsW <= 0 {
			fmt.Fprintf(os.Stderr, "arbsim: -metrics-window must be positive, got %v\n", *metricsW)
			os.Exit(1)
		}
		metrics = obs.NewMetrics(*metricsW)
		probes = append(probes, metrics)
	}
	switch len(probes) {
	case 0:
	case 1:
		cfg.Observer = probes[0]
	default:
		cfg.Observer = probes
	}
	res := bussim.Run(cfg)
	nAgents := cfg.N
	if traceW != nil && traceW.Err != nil {
		fmt.Fprintln(os.Stderr, "arbsim: trace write failed:", traceW.Err)
		os.Exit(1)
	}

	if *asJSON {
		if err := report.WriteResultJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if metrics != nil {
			// Keep stdout pure JSON; the table goes to stderr.
			metrics.Flush(res.WallTime)
			metrics.WriteTable(os.Stderr)
		}
		return
	}

	fmt.Printf("scenario:      %s\n", name)
	fmt.Printf("protocol:      %s\n", res.ProtocolName)
	fmt.Printf("completions:   %d over %.1f time units\n", res.Completions, res.Elapsed)
	fmt.Printf("throughput:    %s req/unit\n", res.Throughput)
	fmt.Printf("utilization:   %s\n", res.Utilization)
	fmt.Printf("wait mean:     %s\n", res.WaitMean)
	fmt.Printf("wait σ:        %s\n", res.WaitStdDev)
	fmt.Printf("ratio tN/t1:   %s\n", res.ThroughputRatio(nAgents, 1))
	fmt.Printf("arbitrations:  %d (%d exposed, %d repasses)\n",
		res.Arbitrations, res.ExposedArbs, res.Repasses)

	if *perAgent {
		fmt.Println("\n  agent   throughput        mean wait")
		for id := 1; id <= nAgents; id++ {
			fmt.Printf("  %5d   %-15s  %8.2f\n",
				id, res.AgentThroughput[id-1], res.AgentWait[id-1].Mean())
		}
	}

	if metrics != nil {
		metrics.Flush(res.WallTime)
		fmt.Println()
		if err := metrics.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
