// Command paper regenerates every table and figure of the paper's
// evaluation section (§4) from the simulator.
//
// Usage:
//
//	paper -all                        # everything, full statistical effort
//	paper -table 4.1                  # one table, all system sizes
//	paper -table 4.4 -figure 4.1      # combinations
//	paper -all -batchsize 2000        # quicker, wider confidence intervals
//
// With the default 10 batches of 8000 completions (the paper's §4.1
// parameters) a full run takes a few minutes; -batchsize 2000 is a good
// preview.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"busarb/internal/experiment"
	"busarb/internal/report"
)

func main() {
	var (
		all       = flag.Bool("all", false, "regenerate every table and figure")
		table     = flag.String("table", "", "comma-separated table ids: 4.1,4.2,4.3,4.4,4.5")
		figure    = flag.String("figure", "", "figure id: 4.1")
		batches   = flag.Int("batches", 10, "batches (paper: 10)")
		batchSize = flag.Int("batchsize", 8000, "completions per batch (paper: 8000)")
		seed      = flag.Uint64("seed", 1988, "random seed")
		parallel  = flag.Int("parallel", 4, "concurrent simulations per table (1 = sequential)")
		sizes     = flag.String("sizes", "10,30,64", "system sizes to run")
		ablations = flag.Bool("ablations", false, "also run the design-choice ablation studies")
		cost      = flag.Bool("cost", false, "print the protocol cost/fairness comparison table")
		robust    = flag.Bool("robustness", false, "run the static-vs-rotating fault-injection study")
		priority  = flag.Bool("priority", false, "run the priority-integration sweep (§2.4/§3)")
		membusF   = flag.Bool("membus", false, "run the split-vs-connected memory-bus sweep")
		svgPath   = flag.String("svg", "", "additionally write Figure 4.1 as an SVG to this path")
		waitCurve = flag.String("waitcurve", "", "write a W-vs-load SVG (all sizes) to this path")
		format    = flag.String("format", "text", "output format: text, csv, or json")
		outDir    = flag.String("outdir", "", "directory for csv/json files (default: stdout)")
	)
	flag.Parse()
	if *format != "text" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "paper: unknown format %q\n", *format)
		os.Exit(1)
	}

	// An explicitly given -seed counts even when it is 0: the zero seed
	// selects a real random stream, not "use the default".
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	opts := experiment.Opts{
		Batches: *batches, BatchSize: *batchSize,
		Seed: *seed, SeedSet: seedSet,
		Parallel: *parallel,
	}
	ns, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	known := map[string]bool{"t4.1": true, "t4.2": true, "t4.3": true, "t4.4": true, "t4.5": true, "f4.1": true}
	want := map[string]bool{}
	for _, t := range strings.Split(*table, ",") {
		if t = strings.TrimSpace(t); t != "" {
			if !known["t"+t] {
				fmt.Fprintf(os.Stderr, "paper: unknown table %q (known: 4.1, 4.2, 4.3, 4.4, 4.5)\n", t)
				os.Exit(1)
			}
			want["t"+t] = true
		}
	}
	for _, f := range strings.Split(*figure, ",") {
		if f = strings.TrimSpace(f); f != "" {
			if !known["f"+f] {
				fmt.Fprintf(os.Stderr, "paper: unknown figure %q (known: 4.1)\n", f)
				os.Exit(1)
			}
			want["f"+f] = true
		}
	}
	if *all {
		for _, id := range []string{"t4.1", "t4.2", "f4.1", "t4.3", "t4.4", "t4.5"} {
			want[id] = true
		}
	}
	if len(want) == 0 && !*ablations && !*cost && !*robust && !*priority && !*membusF && *waitCurve == "" {
		flag.Usage()
		os.Exit(1)
	}
	if *membusF {
		mrows := experiment.SplitVsConnected(12, 8, 2.0,
			[]float64{0.25, 0.5, 1.0, 2.0, 4.0}, opts)
		fmt.Println(experiment.FormatSplitVsConnected(12, 8, 2.0, mrows))
	}
	if *waitCurve != "" {
		var series []report.Series
		for _, n := range ns {
			rows := experiment.Table42(n, opts)
			s := report.Series{Label: fmt.Sprintf("%d agents", n)}
			for _, r := range rows {
				s.X = append(s.X, r.Load)
				s.Y = append(s.Y, r.W)
			}
			series = append(series, s)
		}
		writeOut(filepath.Dir(*waitCurve), filepath.Base(*waitCurve), func(w io.Writer) error {
			return report.LinePlotSVG(w, "Mean waiting time vs offered load",
				"total offered load", "W (bus transaction times)", series)
		})
	}
	if *priority {
		rows := experiment.PriorityStudy(10, 2.0, []float64{0.05, 0.10, 0.25, 0.50}, opts)
		fmt.Println(experiment.FormatPriorityStudy(10, 2.0, rows))
	}
	if *cost {
		for _, n := range ns {
			fmt.Println(experiment.FormatCostTable(n, experiment.CostTable(n)))
		}
	}
	if *robust {
		const grants = 50000
		for _, n := range ns {
			rows := experiment.Robustness(n, grants, []int{0, 5000, 500, 50}, *seed)
			fmt.Println(experiment.FormatRobustness(n, grants, rows))
		}
	}

	// emit routes one artifact to the chosen format: text goes to
	// stdout; csv/json go to <outdir>/<id>.<ext> or stdout.
	emit := func(id, text string, csvFn func(io.Writer) error, rows interface{}) {
		switch *format {
		case "text":
			fmt.Println(text)
			return
		case "csv":
			writeOut(*outDir, id+".csv", csvFn)
		case "json":
			writeOut(*outDir, id+".json", func(w io.Writer) error {
				return report.TableJSON(w, rows)
			})
		}
	}

	if want["t4.1"] {
		for _, n := range ns {
			rows := experiment.Table41(n, n == 30, opts)
			emit(fmt.Sprintf("table4.1-n%d", n),
				experiment.FormatTable41(n, rows),
				func(w io.Writer) error { return report.Table41CSV(w, rows) }, rows)
		}
	}
	if want["t4.2"] {
		for _, n := range ns {
			rows := experiment.Table42(n, opts)
			emit(fmt.Sprintf("table4.2-n%d", n),
				experiment.FormatTable42(n, rows),
				func(w io.Writer) error { return report.Table42CSV(w, rows) }, rows)
		}
	}
	if want["f4.1"] {
		fig := experiment.Figure41(30, 1.5, opts)
		emit("figure4.1",
			experiment.FormatFigure41(fig),
			func(w io.Writer) error { return report.Figure41CSV(w, fig) }, fig)
		if *svgPath != "" {
			writeOut(filepath.Dir(*svgPath), filepath.Base(*svgPath), func(w io.Writer) error {
				return report.Figure41SVG(w, fig)
			})
		}
	}
	if want["t4.3"] {
		for _, n := range ns {
			rows := experiment.Table43(n, opts)
			emit(fmt.Sprintf("table4.3-n%d", n),
				experiment.FormatTable43(n, rows),
				func(w io.Writer) error { return report.Table43CSV(w, rows) }, rows)
		}
	}
	if want["t4.4"] {
		for _, factor := range []float64{2, 4} {
			rows := experiment.Table44(30, factor, opts)
			emit(fmt.Sprintf("table4.4-x%.0f", factor),
				experiment.FormatTable44(30, factor, rows),
				func(w io.Writer) error { return report.Table44CSV(w, rows) }, rows)
		}
	}
	if want["t4.5"] {
		for _, n := range ns {
			rows := experiment.Table45(n, opts)
			emit(fmt.Sprintf("table4.5-n%d", n),
				experiment.FormatTable45(n, rows),
				func(w io.Writer) error { return report.Table45CSV(w, rows) }, rows)
		}
	}
	if *ablations {
		printAblations(opts)
	}
}

// writeOut writes one artifact either to a file in dir or, with no dir,
// to stdout with a header line separating artifacts.
func writeOut(dir, name string, fn func(io.Writer) error) {
	if dir == "" {
		fmt.Printf("# %s\n", name)
		if err := fn(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	if err := fn(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(dir, name))
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 2 {
			return nil, fmt.Errorf("paper: bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func printAblations(opts experiment.Opts) {
	fmt.Println("Ablation: FCFS1 counter width (10 agents, load 2.0)")
	fmt.Println("---------------------------------------------------")
	fmt.Println("  Bits   tN/t1           σW")
	for _, r := range experiment.AblationCounterBits(10, 2.0, opts) {
		fmt.Printf("  %4d   %-14s  %-14s\n", r.Bits, r.Ratio, r.WaitSD)
	}
	fmt.Println()

	fmt.Println("Ablation: hybrid protocol (10 agents, load 2.0)")
	fmt.Println("-----------------------------------------------")
	fmt.Println("  Protocol   tN/t1           σW")
	for _, r := range experiment.AblationHybrid(10, 2.0, opts) {
		fmt.Printf("  %-8s   %-14s  %-14s\n", r.Protocol, r.Ratio, r.WaitSD)
	}
	fmt.Println()

	fmt.Println("Ablation: RR3 empty-pass cost (10 agents)")
	fmt.Println("-----------------------------------------")
	fmt.Println("  Load    W RR1     W RR3    repasses/grant")
	for _, r := range experiment.AblationRR3(10, opts) {
		fmt.Printf("  %4.2f  %7.2f   %7.2f   %13.3f\n", r.Load, r.WaitRR1, r.WaitRR3, r.RepassesPerGrant)
	}
	fmt.Println()

	fmt.Println("Ablation: snapshot vs late-join arbitration (FCFS1, 10 agents)")
	fmt.Println("--------------------------------------------------------------")
	fmt.Println("  Load    W snapshot   W late-join")
	for _, r := range experiment.AblationSnapshot(10, opts) {
		fmt.Printf("  %4.2f  %10.2f   %11.2f\n", r.Load, r.WaitSnapshot, r.WaitLateJoin)
	}
}
