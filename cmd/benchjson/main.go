// Command benchjson converts `go test -bench -benchmem` text output
// (read from stdin) into the repository's BENCH_<date>.json snapshot
// format, so the performance trajectory of the simulator can be archived
// and diffed PR over PR. With -compare it diffs two snapshots instead
// and exits 1 on regressions: any allocs/op increase, or an ns/op
// increase beyond -ns-threshold (negative disables the ns check — the
// setting for CI, whose hardware differs from the archived runs').
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-06.json
//	go test -bench=Table41 -benchmem . | benchjson        # JSON to stdout
//	benchjson -compare BENCH_2026-08-06.json BENCH_2026-08-08.json
//	... | benchjson -o new.json && benchjson -compare -ns-threshold=-1 BENCH_2026-08-08.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"busarb/internal/report"
)

func main() {
	var (
		out     = flag.String("o", "", "output file (default stdout)")
		date    = flag.String("date", "", "snapshot date, YYYY-MM-DD (default today)")
		stamp   = flag.Bool("stamp", true, "stamp the snapshot with today's date when -date is not given; -stamp=false leaves the date empty so output is byte-reproducible")
		compare = flag.Bool("compare", false, "compare two BENCH_<date>.json snapshots (args: old.json new.json, \"-\" reads one from stdin); exit 1 on regressions")
		nsThr   = flag.Float64("ns-threshold", 0.25, "with -compare, relative ns/op increase that counts as a regression (0.25 = 25% slower); negative disables the ns/op check")
	)
	flag.Parse()

	if *compare {
		runCompare(flag.Args(), *nsThr)
		return
	}

	suite, err := report.ParseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(suite.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (pipe `go test -bench` output in)")
		os.Exit(1)
	}
	suite.Date = *date
	if suite.Date == "" && *stamp {
		// The one sanctioned wall-clock read in the repository: the
		// BENCH_<date>.json archive is named after the day it was taken.
		// Regeneration runs pass -stamp=false (or -date) instead.
		suite.Date = time.Now().Format("2006-01-02") //arblint:allow determinism
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteBenchJSON(w, suite); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(suite.Benchmarks), *out)
	}
}

// readSnapshot loads a BENCH_<date>.json file; "-" reads stdin.
func readSnapshot(path string) *report.BenchSuite {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	s, err := report.ReadBenchJSON(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	return s
}

// runCompare diffs two snapshots and exits 1 if the newer one
// regressed.
func runCompare(args []string, nsThreshold float64) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
		os.Exit(1)
	}
	oldS, newS := readSnapshot(args[0]), readSnapshot(args[1])
	regressions, missing := report.CompareBench(oldS, newS, nsThreshold)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchjson: note: %s is in %s but not %s\n", name, args[0], args[1])
	}
	if len(regressions) == 0 {
		shared := len(oldS.Benchmarks) - len(missing)
		fmt.Printf("benchjson: no regressions across %d shared benchmarks\n", shared)
		return
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
	}
	os.Exit(1)
}
