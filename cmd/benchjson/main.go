// Command benchjson converts `go test -bench -benchmem` text output
// (read from stdin) into the repository's BENCH_<date>.json snapshot
// format, so the performance trajectory of the simulator can be archived
// and diffed PR over PR.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-06.json
//	go test -bench=Table41 -benchmem . | benchjson        # JSON to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"busarb/internal/report"
)

func main() {
	var (
		out   = flag.String("o", "", "output file (default stdout)")
		date  = flag.String("date", "", "snapshot date, YYYY-MM-DD (default today)")
		stamp = flag.Bool("stamp", true, "stamp the snapshot with today's date when -date is not given; -stamp=false leaves the date empty so output is byte-reproducible")
	)
	flag.Parse()

	suite, err := report.ParseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(suite.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (pipe `go test -bench` output in)")
		os.Exit(1)
	}
	suite.Date = *date
	if suite.Date == "" && *stamp {
		// The one sanctioned wall-clock read in the repository: the
		// BENCH_<date>.json archive is named after the day it was taken.
		// Regeneration runs pass -stamp=false (or -date) instead.
		suite.Date = time.Now().Format("2006-01-02") //arblint:allow determinism
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := report.WriteBenchJSON(w, suite); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(suite.Benchmarks), *out)
	}
}
