// Command arbverify exhaustively explores a protocol's state space for
// a small agent count and proves (or refutes) its starvation bound: the
// maximum number of grants a continuously waiting agent can be bypassed
// by. Passing means no request/grant interleaving whatsoever exceeds
// the bound.
//
// Examples:
//
// With -cross, it instead cross-validates the protocol's line-level
// (wired-OR hardware) model against the abstract implementation:
// both are driven through identical random request histories and must
// produce identical grant sequences.
//
// Examples:
//
//	arbverify -protocol RR1 -n 5
//	arbverify -protocol AAP1 -n 4 -bound 6
//	arbverify -protocol FP -n 3 -bound 10     # expected to fail: starvation
//	arbverify -protocol RR2 -n 6 -cross       # line-level vs abstract
package main

import (
	"flag"
	"fmt"
	"os"

	"busarb/internal/core"
	"busarb/internal/cyclesim"
	"busarb/internal/verify"
)

func main() {
	var (
		protoName = flag.String("protocol", "RR1", "protocol: FP, RR1, RR2, RR3, FCFS1, FCFS2, AAP1, AAP2")
		n         = flag.Int("n", 4, "number of agents (keep small: state spaces grow fast)")
		bound     = flag.Int("bound", 0, "bypass bound to verify (0 = the protocol's theoretical bound)")
		maxStates = flag.Int("maxstates", 5_000_000, "state cap")
		cross     = flag.Bool("cross", false, "cross-validate the line-level model against the abstract protocol instead of exploring the state space")
		trials    = flag.Int("trials", 50, "random histories per cross-validation (-cross)")
		ticks     = flag.Int("ticks", 400, "ticks per cross-validation history (-cross)")
		seed      = flag.Uint64("seed", 1234, "random seed for -cross histories")
	)
	flag.Parse()

	if *n < 2 {
		fmt.Fprintf(os.Stderr, "arbverify: need at least 2 agents, got %d\n", *n)
		os.Exit(1)
	}
	if *cross {
		runCross(*protoName, *n, *trials, *ticks, *seed)
		return
	}
	sys, defBound, err := systemFor(*protoName, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *bound > 0 {
		sys.MaxBypass = *bound
	} else {
		sys.MaxBypass = defBound
	}

	fmt.Printf("exploring %s with %d agents, bypass bound %d...\n", *protoName, *n, sys.MaxBypass)
	res := verify.Explore(sys, *maxStates)
	switch {
	case res.Violation != nil:
		fmt.Printf("VIOLATION: agent %d bypassed %d times\n", res.Violation.Agent, res.Violation.Bypass)
		fmt.Printf("counterexample (r=request, g=grant): %s\n", res.Violation.Path)
		os.Exit(1)
	case !res.Exhausted:
		fmt.Printf("INCONCLUSIVE: state cap %d reached after %d states\n", *maxStates, res.States)
		os.Exit(1)
	default:
		fmt.Printf("PROVED over %d reachable states; worst observed bypass: %d\n",
			res.States, res.MaxBypass)
	}
}

// runCross drives the line-level and abstract models of one protocol
// through identical request histories and reports the comparison.
func runCross(name string, n, trials, ticks int, seed uint64) {
	kind, err := cyclesim.KindByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbverify:", err)
		os.Exit(1)
	}
	factory, err := core.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbverify:", err)
		os.Exit(1)
	}
	fmt.Printf("cross-validating %s: line-level vs abstract, %d agents, %d histories x %d ticks...\n",
		name, n, trials, ticks)
	if err := cyclesim.CrossCheck(kind, factory, n, trials, ticks, seed); err != nil {
		fmt.Fprintln(os.Stderr, "MISMATCH:", err)
		os.Exit(1)
	}
	fmt.Println("MATCHED: identical grant sequences on every history")
}

func systemFor(name string, n int) (verify.System, int, error) {
	switch name {
	case "FP":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewFixedPriority(m) },
			Key: verify.KeyFP,
		}, 2 * n, nil
	case "RR1":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewRR1(m) },
			Key: verify.KeyRR,
		}, n - 1, nil
	case "RR2":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewRR2(m) },
			Key: verify.KeyRR,
		}, n - 1, nil
	case "RR3":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewRR3(m) },
			Key: verify.KeyRR,
		}, n - 1, nil
	case "FCFS1":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewFCFS1(m) },
			Key: verify.KeyCounters,
		}, n - 1, nil
	case "FCFS2":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewFCFS2(m) },
			Key: verify.KeyCounters,
		}, n - 1, nil
	case "AAP1":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewAAP1(m) },
			Key: verify.KeyAAP1,
		}, 2 * (n - 1), nil
	case "AAP2":
		return verify.System{
			N: n, New: func(m int) core.Protocol { return core.NewAAP2(m) },
			Key: verify.KeyAAP2,
		}, 2 * (n - 1), nil
	}
	return verify.System{}, 0, fmt.Errorf("arbverify: unknown protocol %q", name)
}
