// Command arbtrace visualizes the parallel contention arbiter at the
// wire level: it shows the wired-OR arbitration lines settling round by
// round (the §2.1 bit-removal process), then runs a short cycle-level
// simulation of a chosen protocol and prints every grant.
//
// Examples:
//
//	arbtrace -ids 85,28                 # the paper's §2.1 example (1010101 vs 0011100)
//	arbtrace -n 8 -protocol RR1 -ticks 40
//	arbtrace -topo 4x2:RR1/FCFS2 -ticks 60   # hierarchical trace with per-hop waits
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"busarb/internal/bussim"
	"busarb/internal/contention"
	"busarb/internal/cyclesim"
	"busarb/internal/ident"
	"busarb/internal/obs"
	"busarb/internal/topo"
)

func main() {
	var (
		ids       = flag.String("ids", "85,28", "competing identities for the settle trace (decimal)")
		n         = flag.Int("n", 8, "agents for the protocol trace")
		protoName = flag.String("protocol", "RR1", "line-level protocol: FP, RR1, RR2, RR3, FCFS1, FCFS2, AAP1, AAP2")
		ticks     = flag.Int("ticks", 40, "cycle-level ticks to trace")
		seed      = flag.Uint64("seed", 1, "random seed for request arrivals")
		topoSpec  = flag.String("topo", "", "trace an arbitration tree instead: dims:protos, leaves first (e.g. 4x2:RR1/FCFS2)")
	)
	flag.Parse()

	if *topoSpec != "" {
		if err := traceTopology(*topoSpec, *ticks, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := traceSettle(*ids); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := traceProtocol(*protoName, *n, *ticks, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func traceSettle(idsArg string) error {
	var comps []contention.Competitor
	maxID := uint64(0)
	for i, part := range strings.Split(idsArg, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || v == 0 {
			return fmt.Errorf("arbtrace: bad identity %q", part)
		}
		if v > maxID {
			maxID = v
		}
		comps = append(comps, contention.Competitor{Agent: i, Number: v})
	}
	width := ident.Width(int(maxID))
	arb := contention.New(width, len(comps))

	fmt.Printf("Wired-OR settle trace (%d lines):\n", width)
	for _, c := range comps {
		fmt.Printf("  agent %d applies %0*b\n", c.Agent, width, c.Number)
	}
	res, rows := arb.RunTraced(comps)
	for i, row := range rows {
		fmt.Printf("  round %d: lines carry %s\n", i, bitString(row))
	}
	fmt.Printf("  settled in %d rounds: winner agent %d with %0*b (the maximum)\n",
		res.Rounds, comps[res.Winner].Agent, width, res.WinningNumber)
	return nil
}

func bitString(bs []bool) string {
	var b strings.Builder
	for _, v := range bs {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// printProbe renders the cycle-level event stream as one trace line per
// interesting event.
type printProbe struct{}

func (printProbe) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.RequestIssued:
		fmt.Printf("  tick %3.0f: agent %d asserts bus request\n", e.Time, e.Agent)
	case obs.ArbitrationStart:
		fmt.Printf("  tick %3.0f: agents %v compete on the arbitration lines\n", e.Time, e.Agents)
	case obs.Repass:
		fmt.Printf("  tick %3.0f: empty arbitration pass (repass)\n", e.Time)
	case obs.ServiceStart:
		fmt.Printf("  tick %3.0f: agent %d becomes bus master\n", e.Time, e.Agent)
	}
}

// hopProbe renders a tree run's event stream, one line per event; the
// per-level ArbitrationResolve events carry each hop's wait (time from
// the winning line's assertion at that node to the grant).
type hopProbe struct{}

func (hopProbe) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.RequestIssued:
		fmt.Printf("  t %7.2f: agent %d asserts its request line\n", e.Time, e.Agent)
	case obs.Repass:
		fmt.Printf("  t %7.2f: empty arbitration pass (repass)\n", e.Time)
	case obs.ArbitrationResolve:
		fmt.Printf("  t %7.2f: level %d grants toward agent %d (hop wait %.2f)\n",
			e.Time, e.Level, e.Agent, e.Wait)
	case obs.ServiceStart:
		fmt.Printf("  t %7.2f: agent %d becomes bus master\n", e.Time, e.Agent)
	}
}

// traceTopology runs a short hierarchical simulation and prints every
// grant hop by hop.
func traceTopology(specArg string, ticks int, seed uint64) error {
	parts := strings.SplitN(specArg, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("arbtrace: bad -topo spec %q, want dims:protos (e.g. 4x2:RR1/FCFS2)", specArg)
	}
	spec, err := topo.ParseUniform(parts[0], parts[1])
	if err != nil {
		return fmt.Errorf("arbtrace: bad -topo spec %q: %v", specArg, err)
	}
	n := spec.TotalAgents()
	if n < 2 {
		return fmt.Errorf("arbtrace: need at least 2 agents, got %d", n)
	}
	cfg := bussim.Config{
		N:        n,
		Topology: spec,
		Inter:    bussim.UniformLoad(n, 1.5, 1.0, 1.0),
		Seed:     seed,
		Horizon:  float64(ticks),
		Observer: hopProbe{},
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("arbtrace: %w", err)
	}
	fmt.Printf("Arbitration tree %s, %d agents, depth %d:\n", spec.Name(), n, spec.Depth())
	res := bussim.Run(cfg)
	fmt.Printf("totals: %d completions over %.1f time units\n", res.Completions, res.Elapsed)
	return nil
}

func traceProtocol(name string, n, ticks int, seed uint64) error {
	kind, err := cyclesim.KindByName(name)
	if err != nil {
		return fmt.Errorf("arbtrace: %w", err)
	}
	if n < 2 {
		return fmt.Errorf("arbtrace: need at least 2 agents, got %d", n)
	}
	cfg := cyclesim.Config{
		Protocol: kind,
		N:        n,
		Seed:     seed,
		Horizon:  float64(ticks),
		Observer: printProbe{},
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("arbtrace: %w", err)
	}
	fmt.Printf("Cycle-level %s bus, %d agents (1 tick = half a transaction):\n", name, n)
	res := cyclesim.Run(cfg)
	fmt.Printf("totals: %d arbitrations, %d empty passes, %d wired-OR settle rounds\n",
		res.Arbitrations, res.EmptyPasses, res.SettleRounds)
	return nil
}
