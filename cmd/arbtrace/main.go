// Command arbtrace visualizes the parallel contention arbiter at the
// wire level: it shows the wired-OR arbitration lines settling round by
// round (the §2.1 bit-removal process), then runs a short cycle-level
// simulation of a chosen protocol and prints every grant.
//
// Examples:
//
//	arbtrace -ids 85,28                 # the paper's §2.1 example (1010101 vs 0011100)
//	arbtrace -n 8 -protocol RR1 -ticks 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"busarb/internal/contention"
	"busarb/internal/cyclesim"
	"busarb/internal/ident"
	"busarb/internal/rng"
)

func main() {
	var (
		ids       = flag.String("ids", "85,28", "competing identities for the settle trace (decimal)")
		n         = flag.Int("n", 8, "agents for the protocol trace")
		protoName = flag.String("protocol", "RR1", "line-level protocol: FP, RR1, RR3, FCFS1, FCFS2")
		ticks     = flag.Int("ticks", 40, "cycle-level ticks to trace")
		seed      = flag.Uint64("seed", 1, "random seed for request arrivals")
	)
	flag.Parse()

	if err := traceSettle(*ids); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := traceProtocol(*protoName, *n, *ticks, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func traceSettle(idsArg string) error {
	var comps []contention.Competitor
	maxID := uint64(0)
	for i, part := range strings.Split(idsArg, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || v == 0 {
			return fmt.Errorf("arbtrace: bad identity %q", part)
		}
		if v > maxID {
			maxID = v
		}
		comps = append(comps, contention.Competitor{Agent: i, Number: v})
	}
	width := ident.Width(int(maxID))
	arb := contention.New(width, len(comps))

	fmt.Printf("Wired-OR settle trace (%d lines):\n", width)
	for _, c := range comps {
		fmt.Printf("  agent %d applies %0*b\n", c.Agent, width, c.Number)
	}
	res, rows := arb.RunTraced(comps)
	for i, row := range rows {
		fmt.Printf("  round %d: lines carry %s\n", i, bitString(row))
	}
	fmt.Printf("  settled in %d rounds: winner agent %d with %0*b (the maximum)\n",
		res.Rounds, comps[res.Winner].Agent, width, res.WinningNumber)
	return nil
}

func bitString(bs []bool) string {
	var b strings.Builder
	for _, v := range bs {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func traceProtocol(name string, n, ticks int, seed uint64) error {
	kinds := map[string]cyclesim.Kind{
		"FP": cyclesim.FP, "RR1": cyclesim.RR1, "RR3": cyclesim.RR3,
		"FCFS1": cyclesim.FCFS1, "FCFS2": cyclesim.FCFS2,
	}
	kind, ok := kinds[name]
	if !ok {
		return fmt.Errorf("arbtrace: no line-level model for %q", name)
	}
	if n < 2 {
		return fmt.Errorf("arbtrace: need at least 2 agents, got %d", n)
	}
	bus := cyclesim.New(kind, n)
	src := rng.New(seed)

	fmt.Printf("Cycle-level %s bus, %d agents (1 tick = half a transaction):\n", name, n)
	for tick := 0; tick < ticks; tick++ {
		if src.Intn(3) == 0 {
			id := 1 + src.Intn(n)
			if !bus.Waiting(id) {
				bus.Request(id)
				fmt.Printf("  tick %3d: agent %d asserts bus request\n", tick, id)
			}
		}
		if g := bus.Step(); g != nil {
			fmt.Printf("  tick %3d: agent %d becomes bus master\n", g.StartTick, g.Agent)
		}
	}
	fmt.Printf("totals: %d arbitrations, %d empty passes, %d wired-OR settle rounds\n",
		bus.Arbitrations, bus.EmptyPasses, bus.SettleRounds)
	return nil
}
