// Command arbtrace visualizes the parallel contention arbiter at the
// wire level: it shows the wired-OR arbitration lines settling round by
// round (the §2.1 bit-removal process), then runs a short cycle-level
// simulation of a chosen protocol and prints every grant.
//
// Examples:
//
//	arbtrace -ids 85,28                 # the paper's §2.1 example (1010101 vs 0011100)
//	arbtrace -n 8 -protocol RR1 -ticks 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"busarb/internal/contention"
	"busarb/internal/cyclesim"
	"busarb/internal/ident"
	"busarb/internal/obs"
)

func main() {
	var (
		ids       = flag.String("ids", "85,28", "competing identities for the settle trace (decimal)")
		n         = flag.Int("n", 8, "agents for the protocol trace")
		protoName = flag.String("protocol", "RR1", "line-level protocol: FP, RR1, RR2, RR3, FCFS1, FCFS2, AAP1, AAP2")
		ticks     = flag.Int("ticks", 40, "cycle-level ticks to trace")
		seed      = flag.Uint64("seed", 1, "random seed for request arrivals")
	)
	flag.Parse()

	if err := traceSettle(*ids); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	if err := traceProtocol(*protoName, *n, *ticks, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func traceSettle(idsArg string) error {
	var comps []contention.Competitor
	maxID := uint64(0)
	for i, part := range strings.Split(idsArg, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil || v == 0 {
			return fmt.Errorf("arbtrace: bad identity %q", part)
		}
		if v > maxID {
			maxID = v
		}
		comps = append(comps, contention.Competitor{Agent: i, Number: v})
	}
	width := ident.Width(int(maxID))
	arb := contention.New(width, len(comps))

	fmt.Printf("Wired-OR settle trace (%d lines):\n", width)
	for _, c := range comps {
		fmt.Printf("  agent %d applies %0*b\n", c.Agent, width, c.Number)
	}
	res, rows := arb.RunTraced(comps)
	for i, row := range rows {
		fmt.Printf("  round %d: lines carry %s\n", i, bitString(row))
	}
	fmt.Printf("  settled in %d rounds: winner agent %d with %0*b (the maximum)\n",
		res.Rounds, comps[res.Winner].Agent, width, res.WinningNumber)
	return nil
}

func bitString(bs []bool) string {
	var b strings.Builder
	for _, v := range bs {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// printProbe renders the cycle-level event stream as one trace line per
// interesting event.
type printProbe struct{}

func (printProbe) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.RequestIssued:
		fmt.Printf("  tick %3.0f: agent %d asserts bus request\n", e.Time, e.Agent)
	case obs.ArbitrationStart:
		fmt.Printf("  tick %3.0f: agents %v compete on the arbitration lines\n", e.Time, e.Agents)
	case obs.Repass:
		fmt.Printf("  tick %3.0f: empty arbitration pass (repass)\n", e.Time)
	case obs.ServiceStart:
		fmt.Printf("  tick %3.0f: agent %d becomes bus master\n", e.Time, e.Agent)
	}
}

func traceProtocol(name string, n, ticks int, seed uint64) error {
	kind, err := cyclesim.KindByName(name)
	if err != nil {
		return fmt.Errorf("arbtrace: %w", err)
	}
	if n < 2 {
		return fmt.Errorf("arbtrace: need at least 2 agents, got %d", n)
	}
	cfg := cyclesim.Config{
		Protocol: kind,
		N:        n,
		Seed:     seed,
		Horizon:  float64(ticks),
		Observer: printProbe{},
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("arbtrace: %w", err)
	}
	fmt.Printf("Cycle-level %s bus, %d agents (1 tick = half a transaction):\n", name, n)
	res := cyclesim.Run(cfg)
	fmt.Printf("totals: %d arbitrations, %d empty passes, %d wired-OR settle rounds\n",
		res.Arbitrations, res.EmptyPasses, res.SettleRounds)
	return nil
}
