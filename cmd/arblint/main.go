// Command arblint is the repository's static-analysis gate: a
// multichecker that runs the internal/analysis suite — determinism,
// nilprobe, validatecall, seedsrc, allocfree, syncguard, goroleak —
// over the module and exits nonzero on any finding. `make lint` (and
// therefore `make check` and CI) runs it as `go run ./cmd/arblint
// ./...`.
//
// Usage:
//
//	arblint [-list] [-json] [-stats] [packages]
//
// With no arguments (or `./...`) every package of the enclosing module
// is checked. Other arguments select packages by directory
// (./internal/bussim) or by import-path suffix (internal/bussim).
// Diagnostics print as file:line:col: message (analyzer), globally
// sorted by position so output is byte-identical across runs. -json
// prints them instead as one JSON object per line (file, line, col,
// analyzer, kind, message), where kind distinguishes real findings
// from annotation hygiene ("finding", "unused-allow", "unused-alloc",
// "inapplicable-allow"). -stats appends a per-analyzer table of
// finding and suppression counts to stderr.
//
// A finding can be suppressed — one diagnostic per comment — with
//
//	//arblint:allow <analyzer>
//
// on the offending line or the line above; unused allow comments are
// themselves diagnostics, and so are allow/alloc comments naming an
// analyzer that is unknown or never runs in the annotated package.
// See docs/LINT.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"busarb/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "print diagnostics as one JSON object per line")
	stats := flag.Bool("stats", false, "print per-analyzer finding/suppression counts to stderr")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "arblint:", err)
		os.Exit(2)
	}

	pkgs := prog.Packages()
	if args := flag.Args(); len(args) > 0 && !containsAll(args) {
		var selected []*analysis.Package
		for _, pkg := range pkgs {
			if matchesAny(pkg, args) {
				selected = append(selected, pkg)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "arblint: no packages match %v\n", args)
			os.Exit(2)
		}
		pkgs = selected
	}

	type counts struct{ findings, suppressed int }
	perAnalyzer := make(map[string]*counts, len(analysis.Analyzers))
	for _, a := range analysis.Analyzers {
		perAnalyzer[a.Name] = &counts{}
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analysis.Analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			ds, suppressed, err := analysis.AnalyzePackage(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arblint:", err)
				os.Exit(2)
			}
			diags = append(diags, ds...)
			c := perAnalyzer[a.Name]
			c.findings += len(ds)
			c.suppressed += suppressed
		}
		for _, d := range analysis.CheckAllows(pkg) {
			diags = append(diags, d)
			if c := perAnalyzer[d.Analyzer]; c != nil {
				c.findings++
			}
		}
	}

	// One global order — file, line, column, message — regardless of
	// which package or analyzer produced the diagnostic, so CI diffs
	// and golden pins are byte-stable.
	analysis.SortDiagnostics(diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Kind:     d.Kind,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "arblint:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "%-13s %9s %9s\n", "analyzer", "findings", "allowed")
		for _, a := range analysis.Analyzers {
			c := perAnalyzer[a.Name]
			fmt.Fprintf(os.Stderr, "%-13s %9d %9d\n", a.Name, c.findings, c.suppressed)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arblint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the -json line format: a stable, flat record per
// diagnostic for CI consumption.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Kind     string `json:"kind"`
	Message  string `json:"message"`
}

// containsAll reports whether the argument list asks for the whole
// module (./... or the module path itself).
func containsAll(args []string) bool {
	for _, a := range args {
		if a == "./..." || a == "all" {
			return true
		}
	}
	return false
}

// matchesAny matches a package against directory or import-path
// arguments, including go-style /... suffix wildcards.
func matchesAny(pkg *analysis.Package, args []string) bool {
	for _, arg := range args {
		pattern := strings.TrimSuffix(filepath.ToSlash(arg), "/...")
		recursive := pattern != filepath.ToSlash(arg)
		clean := strings.TrimPrefix(strings.TrimPrefix(pattern, "./"), "/")
		if clean == "" {
			return true
		}
		if pathMatch(pkg.Path, clean, recursive) {
			return true
		}
		if abs, err := filepath.Abs(arg); err == nil && filepath.Clean(abs) == pkg.Dir {
			return true
		}
	}
	return false
}

func pathMatch(path, pattern string, recursive bool) bool {
	if path == pattern || strings.HasSuffix(path, "/"+pattern) {
		return true
	}
	if !recursive {
		return false
	}
	return strings.Contains(path, "/"+pattern+"/") || strings.HasPrefix(path, pattern+"/")
}
