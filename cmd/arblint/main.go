// Command arblint is the repository's static-analysis gate: a
// multichecker that runs the internal/analysis suite — determinism,
// nilprobe, validatecall, seedsrc — over the module and exits nonzero
// on any finding. `make lint` (and therefore `make check` and CI) runs
// it as `go run ./cmd/arblint ./...`.
//
// Usage:
//
//	arblint [-list] [packages]
//
// With no arguments (or `./...`) every package of the enclosing module
// is checked. Other arguments select packages by directory
// (./internal/bussim) or by import-path suffix (internal/bussim).
// Diagnostics print as file:line:col: message (analyzer). A finding can
// be suppressed — one diagnostic per comment — with
//
//	//arblint:allow <analyzer>
//
// on the offending line or the line above; unused allow comments are
// themselves diagnostics. See docs/ARCHITECTURE.md ("Static analysis").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"busarb/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	prog, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "arblint:", err)
		os.Exit(2)
	}

	pkgs := prog.Packages()
	if args := flag.Args(); len(args) > 0 && !containsAll(args) {
		var selected []*analysis.Package
		for _, pkg := range pkgs {
			if matchesAny(pkg, args) {
				selected = append(selected, pkg)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "arblint: no packages match %v\n", args)
			os.Exit(2)
		}
		pkgs = selected
	}

	found := 0
	for _, pkg := range pkgs {
		for _, a := range analysis.Analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "arblint:", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Println(d)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "arblint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// containsAll reports whether the argument list asks for the whole
// module (./... or the module path itself).
func containsAll(args []string) bool {
	for _, a := range args {
		if a == "./..." || a == "all" {
			return true
		}
	}
	return false
}

// matchesAny matches a package against directory or import-path
// arguments, including go-style /... suffix wildcards.
func matchesAny(pkg *analysis.Package, args []string) bool {
	for _, arg := range args {
		pattern := strings.TrimSuffix(filepath.ToSlash(arg), "/...")
		recursive := pattern != filepath.ToSlash(arg)
		clean := strings.TrimPrefix(strings.TrimPrefix(pattern, "./"), "/")
		if clean == "" {
			return true
		}
		if pathMatch(pkg.Path, clean, recursive) {
			return true
		}
		if abs, err := filepath.Abs(arg); err == nil && filepath.Clean(abs) == pkg.Dir {
			return true
		}
	}
	return false
}

func pathMatch(path, pattern string, recursive bool) bool {
	if path == pattern || strings.HasSuffix(path, "/"+pattern) {
		return true
	}
	if !recursive {
		return false
	}
	return strings.Contains(path, "/"+pattern+"/") || strings.HasPrefix(path, pattern+"/")
}
